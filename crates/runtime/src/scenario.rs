//! Seeded degraded-fabric scenarios: per-link machines, impairment walks,
//! Gilbert-Elliott-style degradation episodes, and scheduled link death.
//!
//! The throttled fabric of [`crate::fabric`] charges one uniform
//! [`Machine`] on perfect links; real fabrics are heterogeneous and they
//! degrade. A [`Scenario`] generalizes the model to *per-directed-link*
//! machine parameters that evolve over **epochs** (the fabric's barrier
//! generations — see [`crate::fabric::LinkClock`]): each link `(node,
//! dim)` carries a `Ts` factor and a `Tw` factor per epoch, composed from
//!
//! * a static heterogeneity draw (per-link machines),
//! * a multiplicative jitter walk (rate/delay drift, clamped at the base
//!   machine — degradation never makes a link faster than its spec),
//! * a two-state good/degraded Markov chain (Gilbert-Elliott episodes:
//!   enter degradation with `episode_rate`, recover with
//!   `episode_recovery`, pay `episode_severity` while degraded),
//!
//! plus an optional **death schedule**: an undirected edge dies at an
//! epoch and stays dead (sending across it panics in the link clock — an
//! adaptive driver must route around it instead).
//!
//! Everything is precomputed at construction from a `splitmix64` stream
//! keyed by `(seed, node, dim)`, so a scenario is pure data: replay is bit
//! for bit deterministic from its seed, independent of thread count or
//! scheduling. Construction validates the spec with typed
//! [`ScenarioError`]s — in particular, a death schedule that disconnects
//! the cube is rejected up front, so a surviving route always exists for
//! every scheduled death.

use crate::machine::Machine;

/// One scheduled link death: the undirected edge `(node, node ^ 2^dim)`
/// dies at `epoch` and stays dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDeath {
    /// Either endpoint of the edge (normalized internally).
    pub node: usize,
    /// The dimension the edge crosses.
    pub dim: usize,
    /// First epoch at which the edge is dead.
    pub epoch: usize,
}

/// Declarative description of a degraded-fabric scenario; feed to
/// [`Scenario::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Seed of the impairment stream; same seed, same scenario, bit for bit.
    pub seed: u64,
    /// The clean per-link machine (also fixes the port model).
    pub base: Machine,
    /// Number of precomputed epochs; epochs past the horizon clamp to the
    /// last one. Programs that never pass a barrier run entirely in
    /// epoch 0.
    pub epochs: usize,
    /// Static per-link heterogeneity: each link's factors start uniformly
    /// in `[1, 1 + hetero_spread]`.
    pub hetero_spread: f64,
    /// Per-epoch multiplicative jitter on the `Tw` (rate) factor.
    pub rate_jitter: f64,
    /// Per-epoch multiplicative jitter on the `Ts` (delay) factor.
    pub delay_jitter: f64,
    /// Per-epoch probability a good link enters a degradation episode.
    pub episode_rate: f64,
    /// Per-epoch probability a degraded link recovers.
    pub episode_recovery: f64,
    /// `Ts`/`Tw` multiplier while a link is in an episode (≥ 1).
    pub episode_severity: f64,
    /// Scheduled permanent link deaths.
    pub deaths: Vec<LinkDeath>,
}

impl ScenarioSpec {
    /// A clean scenario: `base` on every link, no impairments — the
    /// starting point to build specs from with struct update syntax.
    pub fn clean(seed: u64, base: Machine) -> Self {
        ScenarioSpec {
            seed,
            base,
            epochs: 1,
            hetero_spread: 0.0,
            rate_jitter: 0.0,
            delay_jitter: 0.0,
            episode_rate: 0.0,
            episode_recovery: 1.0,
            episode_severity: 1.0,
            deaths: Vec::new(),
        }
    }
}

/// Why a [`ScenarioSpec`] could not be compiled into a [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioError {
    /// `epochs` was 0 — a scenario needs at least one epoch.
    ZeroEpochs,
    /// A spread/jitter/severity/probability parameter was NaN, infinite,
    /// or out of its domain.
    InvalidParameter,
    /// `episode_severity` was below 1: episodes degrade, never accelerate.
    SeverityBelowOne,
    /// A scheduled death names a node or dimension outside the cube.
    DeathOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// The offending dimension.
        dim: usize,
    },
    /// The death schedule disconnects the cube: with every scheduled
    /// death applied no surviving route exists between some node pair, so
    /// no driver could adapt around it.
    Disconnects,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::ZeroEpochs => write!(f, "a scenario needs at least one epoch"),
            ScenarioError::InvalidParameter => {
                write!(f, "scenario parameters must be finite and within their domain")
            }
            ScenarioError::SeverityBelowOne => {
                write!(f, "episode severity must be >= 1 (episodes degrade, never accelerate)")
            }
            ScenarioError::DeathOutOfRange { node, dim } => {
                write!(f, "scheduled death (node {node}, dim {dim}) is outside the cube")
            }
            ScenarioError::Disconnects => {
                write!(f, "the death schedule disconnects the cube: no surviving route")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A compiled degraded-fabric scenario: per-link `Ts`/`Tw` factor
/// timelines plus the death schedule, all pure precomputed data (see the
/// module docs). Wrap in `Arc` and hand to
/// [`FabricModel::Degraded`](crate::fabric::FabricModel::Degraded).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    d: usize,
    base: Machine,
    epochs: usize,
    seed: u64,
    /// `factors[node][dim][epoch] = (ts_factor, tw_factor)`, both ≥ 1.
    factors: Vec<Vec<Vec<(f64, f64)>>>,
    /// `dead_from[u][dim]` for the undirected edge keyed at its smaller
    /// endpoint `u`: first dead epoch, `usize::MAX` when never.
    dead_from: Vec<Vec<usize>>,
}

/// The `splitmix64` step: a tiny, well-mixed deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from one `splitmix64` output.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Factor walks are clamped into `[1, FACTOR_CAP]`: degradation never
/// accelerates a link past its spec, and never degrades it unboundedly.
const FACTOR_CAP: f64 = 16.0;

impl Scenario {
    /// Compiles `spec` for a `d`-cube. See [`ScenarioError`] for the
    /// rejected inputs; notably a death schedule that disconnects the
    /// cube is a typed error, so every accepted scenario leaves a
    /// surviving route for every death.
    pub fn new(d: usize, spec: ScenarioSpec) -> Result<Scenario, ScenarioError> {
        if spec.epochs == 0 {
            return Err(ScenarioError::ZeroEpochs);
        }
        for x in [spec.hetero_spread, spec.rate_jitter, spec.delay_jitter] {
            if !x.is_finite() || x < 0.0 {
                return Err(ScenarioError::InvalidParameter);
            }
        }
        for p in [spec.episode_rate, spec.episode_recovery] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ScenarioError::InvalidParameter);
            }
        }
        if !spec.episode_severity.is_finite() {
            return Err(ScenarioError::InvalidParameter);
        }
        if spec.episode_severity < 1.0 {
            return Err(ScenarioError::SeverityBelowOne);
        }
        let p = 1usize << d;
        let mut dead_from = vec![vec![usize::MAX; d.max(1)]; p];
        for death in &spec.deaths {
            if death.node >= p || death.dim >= d {
                return Err(ScenarioError::DeathOutOfRange { node: death.node, dim: death.dim });
            }
            let u = death.node.min(death.node ^ (1 << death.dim));
            let slot = &mut dead_from[u][death.dim];
            *slot = (*slot).min(death.epoch);
        }
        // Connectivity with *every* death applied (deaths are permanent,
        // so the final edge set is the worst case for every epoch).
        if !connected_without(d, &dead_from) {
            return Err(ScenarioError::Disconnects);
        }
        let mut factors = Vec::with_capacity(p);
        for node in 0..p {
            let mut by_dim = Vec::with_capacity(d.max(1));
            for dim in 0..d.max(1) {
                // One independent stream per directed link, keyed on
                // (seed, node, dim) — replay never depends on evaluation
                // order.
                let mut rng = spec
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(((node as u64) << 20) | dim as u64);
                let h_ts = 1.0 + spec.hetero_spread * unit(&mut rng);
                let h_tw = 1.0 + spec.hetero_spread * unit(&mut rng);
                let mut w_ts = 1.0f64;
                let mut w_tw = 1.0f64;
                let mut degraded = false;
                let mut timeline = Vec::with_capacity(spec.epochs);
                for _ in 0..spec.epochs {
                    w_ts = (w_ts * (1.0 + spec.delay_jitter * (2.0 * unit(&mut rng) - 1.0)))
                        .clamp(1.0, FACTOR_CAP);
                    w_tw = (w_tw * (1.0 + spec.rate_jitter * (2.0 * unit(&mut rng) - 1.0)))
                        .clamp(1.0, FACTOR_CAP);
                    let flip = unit(&mut rng);
                    degraded = if degraded {
                        flip >= spec.episode_recovery
                    } else {
                        flip < spec.episode_rate
                    };
                    let sev = if degraded { spec.episode_severity } else { 1.0 };
                    timeline.push((
                        (h_ts * w_ts * sev).min(FACTOR_CAP),
                        (h_tw * w_tw * sev).min(FACTOR_CAP),
                    ));
                }
                by_dim.push(timeline);
            }
            factors.push(by_dim);
        }
        Ok(Scenario {
            d,
            base: spec.base,
            epochs: spec.epochs,
            seed: spec.seed,
            factors,
            dead_from,
        })
    }

    /// Cube dimension this scenario was compiled for.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The clean per-link machine (fixes the port model too).
    pub fn base(&self) -> Machine {
        self.base
    }

    /// The precomputed epoch horizon (later epochs clamp to the last).
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// The seed the impairment stream was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `(Ts factor, Tw factor)` of directed link `(node, dim)` at `epoch`.
    pub fn factors(&self, node: usize, dim: usize, epoch: usize) -> (f64, f64) {
        self.factors[node][dim][epoch.min(self.epochs - 1)]
    }

    /// The effective machine of directed link `(node, dim)` at `epoch`:
    /// the base machine scaled by the link's factors.
    pub fn machine_for(&self, node: usize, dim: usize, epoch: usize) -> Machine {
        let (fts, ftw) = self.factors(node, dim, epoch);
        Machine { ts: self.base.ts * fts, tw: self.base.tw * ftw, ports: self.base.ports }
    }

    /// Whether the undirected edge `(node, node ^ 2^dim)` is alive at
    /// `epoch`. Death epochs are **not** clamped to the horizon: deaths
    /// are permanent wall-clock-free facts, so an edge scheduled to die
    /// at epoch `k` is alive before `k` even when `k ≥ epochs`.
    pub fn edge_alive(&self, node: usize, dim: usize, epoch: usize) -> bool {
        let u = node.min(node ^ (1 << dim));
        epoch < self.dead_from[u][dim]
    }

    /// Whether any link death is scheduled at all (drivers that cannot
    /// reroute reject such scenarios up front).
    pub fn has_deaths(&self) -> bool {
        self.dead_from.iter().any(|dims| dims.iter().any(|&e| e != usize::MAX))
    }

    /// The dead undirected edges at `epoch`, as `(smaller endpoint, dim)`
    /// pairs in ascending order — the deterministic iteration order the
    /// relay script relies on.
    pub fn dead_edges(&self, epoch: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (u, dims) in self.dead_from.iter().enumerate() {
            for (dim, &from) in dims.iter().enumerate() {
                if epoch >= from {
                    out.push((u, dim));
                }
            }
        }
        out
    }

    /// The oracle's pricing machine at `epoch`: the base machine scaled by
    /// the **worst factors over the alive links** — the machine a pricer
    /// that knows the scenario in advance would plan against, since the
    /// slowest link paces every lock-step transition.
    pub fn worst_alive_machine(&self, epoch: usize) -> Machine {
        let mut fts = 1.0f64;
        let mut ftw = 1.0f64;
        for node in 0..(1usize << self.d) {
            for dim in 0..self.d {
                if self.edge_alive(node, dim, epoch) {
                    let (a, b) = self.factors(node, dim, epoch);
                    fts = fts.max(a);
                    ftw = ftw.max(b);
                }
            }
        }
        Machine { ts: self.base.ts * fts, tw: self.base.tw * ftw, ports: self.base.ports }
    }
}

/// BFS connectivity of the `d`-cube with the edges in `dead_from`
/// (any finite death epoch) removed.
fn connected_without(d: usize, dead_from: &[Vec<usize>]) -> bool {
    let p = 1usize << d;
    let mut seen = vec![false; p];
    let mut queue = vec![0usize];
    seen[0] = true;
    let mut reached = 1usize;
    while let Some(n) = queue.pop() {
        for dim in 0..d {
            let u = n.min(n ^ (1 << dim));
            if dead_from[u][dim] != usize::MAX {
                continue;
            }
            let peer = n ^ (1 << dim);
            if !seen[peer] {
                seen[peer] = true;
                reached += 1;
                queue.push(peer);
            }
        }
    }
    reached == p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impaired_spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            epochs: 8,
            hetero_spread: 0.5,
            rate_jitter: 0.2,
            delay_jitter: 0.1,
            episode_rate: 0.3,
            episode_recovery: 0.5,
            episode_severity: 3.0,
            ..ScenarioSpec::clean(seed, Machine::paper_figure2())
        }
    }

    #[test]
    fn replay_is_seed_deterministic() {
        let a = Scenario::new(3, impaired_spec(7)).expect("valid spec");
        let b = Scenario::new(3, impaired_spec(7)).expect("valid spec");
        assert_eq!(a, b, "same seed must compile bit-for-bit identically");
        let c = Scenario::new(3, impaired_spec(8)).expect("valid spec");
        assert_ne!(a, c, "a different seed must actually perturb the factors");
    }

    #[test]
    fn factors_are_finite_and_never_accelerate() {
        let sc = Scenario::new(2, impaired_spec(42)).expect("valid spec");
        for node in 0..4 {
            for dim in 0..2 {
                for epoch in 0..sc.epochs() {
                    let (fts, ftw) = sc.factors(node, dim, epoch);
                    assert!(fts.is_finite() && (1.0..=FACTOR_CAP).contains(&fts));
                    assert!(ftw.is_finite() && (1.0..=FACTOR_CAP).contains(&ftw));
                }
            }
        }
        // Past-horizon epochs clamp to the last precomputed one.
        assert_eq!(sc.factors(0, 0, 10_000), sc.factors(0, 0, sc.epochs() - 1));
    }

    #[test]
    fn clean_scenario_is_the_base_machine_everywhere() {
        let sc = Scenario::new(2, ScenarioSpec::clean(1, Machine::all_port(10.0, 2.0)))
            .expect("clean spec");
        for node in 0..4 {
            for dim in 0..2 {
                assert_eq!(sc.factors(node, dim, 0), (1.0, 1.0));
                assert_eq!(sc.machine_for(node, dim, 0), Machine::all_port(10.0, 2.0));
                assert!(sc.edge_alive(node, dim, 0));
            }
        }
        assert!(!sc.has_deaths());
        assert_eq!(sc.worst_alive_machine(0), Machine::all_port(10.0, 2.0));
    }

    #[test]
    fn deaths_follow_the_schedule_and_normalize_endpoints() {
        let spec = ScenarioSpec {
            deaths: vec![LinkDeath { node: 5, dim: 0, epoch: 2 }],
            ..ScenarioSpec::clean(3, Machine::paper_figure2())
        };
        let sc = Scenario::new(3, spec).expect("one death keeps a 3-cube connected");
        assert!(sc.has_deaths());
        // Edge (4, 5): alive at epochs 0 and 1, dead from 2 on — queried
        // from either endpoint.
        for epoch in 0..2 {
            assert!(sc.edge_alive(5, 0, epoch));
            assert!(sc.edge_alive(4, 0, epoch));
            assert!(sc.dead_edges(epoch).is_empty());
        }
        for epoch in [2usize, 3, 100] {
            assert!(!sc.edge_alive(5, 0, epoch));
            assert!(!sc.edge_alive(4, 0, epoch));
            assert_eq!(sc.dead_edges(epoch), vec![(4, 0)]);
        }
        // Other edges are untouched.
        assert!(sc.edge_alive(0, 0, 100) && sc.edge_alive(5, 1, 100));
    }

    #[test]
    fn disconnecting_schedules_are_rejected() {
        // d = 1: killing the only edge partitions the 2-cube.
        let spec = ScenarioSpec {
            deaths: vec![LinkDeath { node: 0, dim: 0, epoch: 0 }],
            ..ScenarioSpec::clean(1, Machine::paper_figure2())
        };
        assert_eq!(Scenario::new(1, spec).unwrap_err(), ScenarioError::Disconnects);
        // d = 2: isolating node 0 by killing both its edges partitions too.
        let spec = ScenarioSpec {
            deaths: vec![
                LinkDeath { node: 0, dim: 0, epoch: 1 },
                LinkDeath { node: 0, dim: 1, epoch: 5 },
            ],
            ..ScenarioSpec::clean(2, Machine::paper_figure2())
        };
        assert_eq!(Scenario::new(2, spec).unwrap_err(), ScenarioError::Disconnects);
        // One dead edge on a 2-cube leaves the ring: fine.
        let spec = ScenarioSpec {
            deaths: vec![LinkDeath { node: 0, dim: 0, epoch: 0 }],
            ..ScenarioSpec::clean(2, Machine::paper_figure2())
        };
        assert!(Scenario::new(2, spec).is_ok());
    }

    #[test]
    fn invalid_specs_surface_typed_errors() {
        let base = Machine::paper_figure2();
        let spec = ScenarioSpec { epochs: 0, ..ScenarioSpec::clean(1, base) };
        assert_eq!(Scenario::new(2, spec).unwrap_err(), ScenarioError::ZeroEpochs);
        let spec = ScenarioSpec { rate_jitter: f64::NAN, ..ScenarioSpec::clean(1, base) };
        assert_eq!(Scenario::new(2, spec).unwrap_err(), ScenarioError::InvalidParameter);
        let spec = ScenarioSpec { episode_rate: 1.5, ..ScenarioSpec::clean(1, base) };
        assert_eq!(Scenario::new(2, spec).unwrap_err(), ScenarioError::InvalidParameter);
        let spec = ScenarioSpec { episode_severity: 0.5, ..ScenarioSpec::clean(1, base) };
        assert_eq!(Scenario::new(2, spec).unwrap_err(), ScenarioError::SeverityBelowOne);
        let spec = ScenarioSpec {
            deaths: vec![LinkDeath { node: 9, dim: 0, epoch: 0 }],
            ..ScenarioSpec::clean(1, base)
        };
        assert_eq!(
            Scenario::new(2, spec).unwrap_err(),
            ScenarioError::DeathOutOfRange { node: 9, dim: 0 }
        );
        for err in [
            ScenarioError::ZeroEpochs,
            ScenarioError::InvalidParameter,
            ScenarioError::SeverityBelowOne,
            ScenarioError::DeathOutOfRange { node: 9, dim: 0 },
            ScenarioError::Disconnects,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn worst_alive_machine_tracks_the_slowest_alive_link() {
        let sc = Scenario::new(2, impaired_spec(11)).expect("valid spec");
        for epoch in 0..sc.epochs() {
            let worst = sc.worst_alive_machine(epoch);
            assert!(worst.ts >= sc.base().ts && worst.tw >= sc.base().tw);
            for node in 0..4 {
                for dim in 0..2 {
                    let m = sc.machine_for(node, dim, epoch);
                    assert!(m.ts <= worst.ts + 1e-12 && m.tw <= worst.tw + 1e-12);
                }
            }
        }
    }

    #[test]
    fn episodes_actually_fire_under_an_aggressive_spec() {
        // With a 30% entry rate over 8 epochs × 8 links, some link must
        // see a severity bump — otherwise the chain is wired wrong.
        let sc = Scenario::new(2, impaired_spec(3)).expect("valid spec");
        let mut max_factor = 0.0f64;
        for node in 0..4 {
            for dim in 0..2 {
                for epoch in 0..sc.epochs() {
                    max_factor = max_factor.max(sc.factors(node, dim, epoch).1);
                }
            }
        }
        assert!(max_factor >= 3.0, "no episode fired: max factor {max_factor}");
    }
}
