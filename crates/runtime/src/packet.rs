//! Packetized links: framed packets, windowed per-dimension channels and
//! the stateful pipelined exchange phase.
//!
//! The generic [`pipelined_exchange`](crate::pipelined::pipelined_exchange)
//! requires its per-packet computation to be a pure function of the packet
//! — the CC-cube model of \[9\]. The Jacobi solver's exchange phases are
//! *not* of that shape: pairing a mobile packet rotates the node's resident
//! columns too, so the computation carries shared state across packets.
//! This module provides the pipeline that such phases need:
//!
//! * [`Packet`] — a framed packet: `(k, q)` sequence header plus payload.
//!   The header lets every receive assert protocol position, and the frame
//!   carries [`Meterable`] accounting through a mixed link protocol.
//! * [`PacketChannel`] — a windowed view of a node's links: up to
//!   `Q` packetized sends may be in flight per dimension (the runtime
//!   generalization of the old one-message-per-exchange link layer);
//!   in-flight counts and their peaks are tracked per dimension.
//! * [`pipelined_phase`] — runs one exchange phase (`K` transitions
//!   through `links[k]`, the mobile payload split into `Q` packets) as a
//!   software pipeline: packet `q` of iteration `k` is received from
//!   `links[k−1]`, processed, and *immediately forwarded* through
//!   `links[k]`, so the transmission of packet `q` overlaps the
//!   computation of packet `q+1` and, across nodes, packet `q` occupies
//!   hop `k` of the link path at pipeline depth `s = k + q` — the paper's
//!   prologue (pipe filling, stages `s < Q−1`), kernel, and epilogue (pipe
//!   draining) stage machine in dataflow form.
//!
//! Unlike the pure-packet pipeline, [`pipelined_phase`] guarantees a fixed
//! **processing order**: `(k, q)` lexicographic — iteration `k` processes
//! its packets `q = 0..Q` in order, exactly the order of the unpipelined
//! reference loop. Stateful computations (like Jacobi pairings against a
//! resident block) therefore produce *bitwise-identical* results for every
//! `Q`: the state sees the same update sequence, only the message framing
//! and the overlap change. That property is what lets the threaded
//! eigensolver assert bitwise equality between its pipelined and
//! unpipelined drivers.

use crate::spmd::{Meterable, NodeCtx};

/// A framed packet: pipeline coordinates plus payload.
///
/// `k` is the iteration (hop) that sent the packet, `q` the packet index
/// within the payload split, and `job` the batch-job id when several
/// independent problems multiplex one fabric (0 for solo programs).
/// Receivers assert the header, turning a silent protocol slip into an
/// immediate panic; the job tag is what lets a receiver demultiplex
/// interleaved jobs' packets off one FIFO link
/// ([`crate::jobmux::JobMux`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Packet<P> {
    pub job: u32,
    pub k: u32,
    pub q: u32,
    pub payload: P,
}

impl<P> Packet<P> {
    /// A solo (job-0) packet — the framing every single-problem driver
    /// uses.
    pub fn new(k: u32, q: u32, payload: P) -> Self {
        Packet { job: 0, k, q, payload }
    }

    /// A packet tagged for batch job `job`.
    pub fn for_job(job: u32, k: u32, q: u32, payload: P) -> Self {
        Packet { job, k, q, payload }
    }
}

impl<P: Meterable> Meterable for Packet<P> {
    fn elems(&self) -> u64 {
        self.payload.elems()
    }

    fn is_control(&self) -> bool {
        self.payload.is_control()
    }

    fn job(&self) -> u32 {
        self.job
    }

    fn kq(&self) -> Option<(u32, u32)> {
        Some((self.k, self.q))
    }
}

/// Per-phase statistics of a [`PacketChannel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// The in-flight window: how many packetized sends a node may hold
    /// per dimension (`Q` for a `Q`-packet phase).
    pub window: usize,
    /// Peak simultaneous in-flight sends observed per dimension.
    pub peak_in_flight: Vec<usize>,
}

/// A windowed, packetized view of a node's links for one exchange phase.
///
/// Wraps a [`NodeCtx`], counting in-flight packets per dimension: a send
/// increments the dimension's counter, a receive decrements it. In the
/// symmetric SPMD programs of the paper every node runs the same schedule,
/// so the local count equals the partner's unconsumed backlog — the number
/// of messages genuinely in flight on the link. Sends beyond the window
/// panic: the window is the contract that bounds link-buffer occupancy.
pub struct PacketChannel<'c, 'n, M: Send + Meterable> {
    ctx: &'c NodeCtx<'n, M>,
    window: usize,
    in_flight: Vec<usize>,
    peak: Vec<usize>,
}

impl<'c, 'n, M: Send + Meterable> PacketChannel<'c, 'n, M> {
    /// A channel allowing up to `window` in-flight packets per dimension.
    pub fn new(ctx: &'c NodeCtx<'n, M>, window: usize) -> Self {
        assert!(window >= 1, "window must admit at least one packet");
        let d = ctx.dim().max(1);
        PacketChannel { ctx, window, in_flight: vec![0; d], peak: vec![0; d] }
    }

    /// Sends one packetized message across `dim`.
    ///
    /// # Panics
    /// Panics if the dimension already holds `window` in-flight packets.
    pub fn send(&mut self, dim: usize, msg: M) {
        self.account_send(dim);
        self.ctx.send(dim, msg);
    }

    /// [`PacketChannel::send`] with a data-readiness stamp: the packet's
    /// transmission acquires its port and link through the fabric no
    /// earlier than `ready` (see [`NodeCtx::send_after`]). Window
    /// accounting is identical to [`PacketChannel::send`].
    pub fn send_after(&mut self, dim: usize, msg: M, ready: f64) {
        self.account_send(dim);
        self.ctx.send_after(dim, msg, ready);
    }

    fn account_send(&mut self, dim: usize) {
        assert!(
            self.in_flight[dim] < self.window,
            "dimension {dim} already holds {} in-flight packets (window {})",
            self.in_flight[dim],
            self.window
        );
        self.in_flight[dim] += 1;
        self.peak[dim] = self.peak[dim].max(self.in_flight[dim]);
    }

    /// Receives the next packetized message from `dim` (blocking).
    ///
    /// # Panics
    /// Panics if no windowed send is outstanding on `dim` — a receive
    /// without a matching [`PacketChannel::send`] means the caller mixed
    /// raw channel traffic into the windowed protocol, which would
    /// silently corrupt the in-flight accounting.
    pub fn recv(&mut self, dim: usize) -> M {
        self.account_recv(dim);
        self.ctx.recv(dim)
    }

    /// [`PacketChannel::recv`] returning the packet's virtual arrival
    /// stamp without advancing the node clock (see
    /// [`NodeCtx::recv_stamped`]).
    pub fn recv_stamped(&mut self, dim: usize) -> (M, f64) {
        self.account_recv(dim);
        self.ctx.recv_stamped(dim)
    }

    fn account_recv(&mut self, dim: usize) {
        assert!(
            self.in_flight[dim] > 0,
            "dimension {dim} has no in-flight packet to receive (window accounting broken)"
        );
        self.in_flight[dim] -= 1;
    }

    /// Current in-flight count on `dim`.
    pub fn in_flight(&self, dim: usize) -> usize {
        self.in_flight[dim]
    }

    /// Statistics snapshot (window + per-dimension peaks).
    pub fn stats(&self) -> PhaseStats {
        PhaseStats { window: self.window, peak_in_flight: self.peak.clone() }
    }
}

/// Runs one exchange phase — `K = links.len()` transitions, the mobile
/// payload split into `Q = packets.len()` packets — as a software pipeline
/// with a *stateful* per-packet computation.
///
/// For every iteration `k` in order, and every packet `q` in order:
/// receive packet `q` from `links[k−1]` (iteration 0 starts from the local
/// `packets`), call `process(k, q, &mut payload)`, and forward the packet
/// through `links[k]` immediately — so while the link transmits packet
/// `q`, the node is already processing packet `q+1`, and downstream nodes
/// process iteration `k+1` of early packets while this node still works on
/// iteration `k` of late ones (the paper's stage `s = k + q` wavefront).
/// After the last iteration the `Q` packets arriving from `links[K−1]` are
/// returned in packet order.
///
/// `wrap` lifts a framed packet into the link message type and `unwrap`
/// extracts it, so links carrying a mixed protocol (blocks, packets,
/// votes) need no second channel fabric. Every receive asserts the frame's
/// `(k, q)` header.
///
/// `process` is invoked in `(k, q)` lexicographic order — the unpipelined
/// reference order — which is what makes stateful computations produce
/// bitwise-identical results for every `Q` (see the module docs).
pub fn pipelined_phase<M, P, W, U, F>(
    ctx: &NodeCtx<'_, M>,
    links: &[usize],
    packets: Vec<P>,
    wrap: W,
    unwrap: U,
    process: F,
) -> (Vec<P>, PhaseStats)
where
    M: Send + Meterable,
    W: Fn(Packet<P>) -> M,
    U: Fn(M) -> Packet<P>,
    F: FnMut(usize, usize, &mut P),
{
    // Local packets are ready at phase entry; consuming each arrival
    // advances the virtual clock — the phase completes for this node when
    // it holds the packet.
    let entry = vec![ctx.virtual_now(); packets.len()];
    let (finals, stamps, stats) =
        pipelined_phase_stamped(ctx, links, packets, &entry, wrap, unwrap, process);
    for &stamp in &stamps {
        ctx.advance_clock_to(stamp);
    }
    (finals, stats)
}

/// [`pipelined_phase`] with explicit per-packet readiness stamps and *no*
/// clock advance: packet `q` enters the pipe ready at `entry[q]` (instead
/// of the node's current virtual time), and the returned stamps are the
/// final packets' fabric arrival times, left for the caller to consume.
///
/// This is the chaining primitive for multi-phase tail runs: a run
/// executes its phases back-to-back through this function, threading each
/// phase's arrival stamps into the next phase's entry stamps, so packet
/// `q` of phase `i+1` departs as soon as packet `q` of phase `i` has
/// landed — while the node clock only advances once, at the end of the
/// run. Processing order and framing are identical to
/// [`pipelined_phase`], so the bitwise contract carries over.
pub fn pipelined_phase_stamped<M, P, W, U, F>(
    ctx: &NodeCtx<'_, M>,
    links: &[usize],
    packets: Vec<P>,
    entry: &[f64],
    wrap: W,
    unwrap: U,
    mut process: F,
) -> (Vec<P>, Vec<f64>, PhaseStats)
where
    M: Send + Meterable,
    W: Fn(Packet<P>) -> M,
    U: Fn(M) -> Packet<P>,
    F: FnMut(usize, usize, &mut P),
{
    let k_total = links.len();
    let q_total = packets.len();
    assert_eq!(entry.len(), q_total, "one entry stamp per packet");
    if k_total == 0 || q_total == 0 {
        let stats =
            PhaseStats { window: q_total.max(1), peak_in_flight: vec![0; ctx.dim().max(1)] };
        return (packets, entry.to_vec(), stats);
    }
    let mut chan = PacketChannel::new(ctx, q_total);
    let mut local: Vec<Option<P>> = packets.into_iter().map(Some).collect();
    let expect = |pkt: &Packet<P>, k: usize, q: usize| {
        assert_eq!(
            (pkt.k, pkt.q),
            (k as u32, q as u32),
            "packet protocol violation: got ({}, {}) expecting ({k}, {q})",
            pkt.k,
            pkt.q
        );
    };
    // The phase's virtual-time dataflow: each packet's forwarding departs
    // when *its own* input has arrived (stamp from the fabric), not when
    // the node's program counter gets there — the comm-processor model.
    for k in 0..k_total {
        for q in 0..q_total {
            let (mut payload, ready) = if k == 0 {
                (local[q].take().expect("local packet consumed twice"), entry[q])
            } else {
                let (msg, stamp) = chan.recv_stamped(links[k - 1]);
                let pkt = unwrap(msg);
                expect(&pkt, k - 1, q);
                (pkt.payload, stamp)
            };
            process(k, q, &mut payload);
            chan.send_after(links[k], wrap(Packet::new(k as u32, q as u32, payload)), ready);
        }
    }
    let mut stamps = Vec::with_capacity(q_total);
    let finals = (0..q_total)
        .map(|q| {
            let (msg, stamp) = chan.recv_stamped(links[k_total - 1]);
            let pkt = unwrap(msg);
            expect(&pkt, k_total - 1, q);
            stamps.push(stamp);
            pkt.payload
        })
        .collect();
    let stats = chan.stats();
    (finals, stamps, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::{run_spmd, run_spmd_metered};

    type Log = Vec<f64>;

    /// Reference: the whole-payload unpipelined phase loop — iteration k
    /// processes every packet against the node state, then exchanges them
    /// one message per packet.
    fn reference(d: usize, links: &[usize], q: usize) -> Vec<(Vec<Log>, f64)> {
        run_spmd::<Packet<Log>, (Vec<Log>, f64), _>(d, move |ctx| {
            let mut state = ctx.id() as f64;
            let mut packets: Vec<Log> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            for (k, &link) in links.iter().enumerate() {
                for (qi, p) in packets.iter_mut().enumerate() {
                    state += (k * 31 + qi) as f64; // stateful: order-sensitive
                    p.push(state);
                }
                for (qi, p) in packets.drain(..).enumerate() {
                    ctx.send(link, Packet::new(k as u32, qi as u32, p));
                }
                packets = (0..q).map(|_| ctx.recv(link).payload).collect();
            }
            (packets, state)
        })
    }

    fn pipelined(d: usize, links: &[usize], q: usize) -> Vec<(Vec<Log>, f64)> {
        run_spmd::<Packet<Log>, (Vec<Log>, f64), _>(d, move |ctx| {
            let mut state = ctx.id() as f64;
            let packets: Vec<Log> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            let (finals, _) = pipelined_phase(
                ctx,
                links,
                packets,
                |pkt| pkt,
                |pkt| pkt,
                |k, qi, p: &mut Log| {
                    state += (k * 31 + qi) as f64;
                    p.push(state);
                },
            );
            (finals, state)
        })
    }

    #[test]
    fn stateful_pipeline_equals_reference_for_every_q() {
        let links = vec![0usize, 1, 0, 2, 0, 1, 0]; // D_3^BR, K = 7
        for q in [1usize, 2, 3, 7, 12] {
            assert_eq!(reference(3, &links, q), pipelined(3, &links, q), "q={q}");
        }
    }

    #[test]
    fn single_link_phase_round_trips() {
        // K = 1: everything goes out on one link and comes straight back.
        let links = vec![1usize];
        for q in [1usize, 4] {
            assert_eq!(reference(2, &links, q), pipelined(2, &links, q), "q={q}");
        }
    }

    #[test]
    fn empty_phase_is_identity() {
        let results = run_spmd::<Packet<Log>, Vec<Log>, _>(1, |ctx| {
            let packets = vec![vec![ctx.id() as f64]];
            let (finals, stats) = pipelined_phase(ctx, &[], packets, |p| p, |p| p, |_, _, _| ());
            assert_eq!(stats.peak_in_flight, vec![0]);
            finals
        });
        assert_eq!(results[0], vec![vec![0.0]]);
        assert_eq!(results[1], vec![vec![1.0]]);
    }

    #[test]
    fn in_flight_peaks_at_packet_count() {
        // All Q sends of an iteration are issued before the matching
        // receives of the next iteration drain them: the per-dimension
        // in-flight peak is exactly Q (the channel window).
        let links = [0usize, 1, 0];
        for q in [1usize, 3, 5] {
            let results = run_spmd::<Packet<Log>, PhaseStats, _>(3, move |ctx| {
                let packets: Vec<Log> = (0..q).map(|i| vec![i as f64]).collect();
                let (_, stats) = pipelined_phase(ctx, &links, packets, |p| p, |p| p, |_, _, _| ());
                stats
            });
            for stats in results {
                assert_eq!(stats.window, q);
                assert_eq!(stats.peak_in_flight[0], q);
                assert_eq!(stats.peak_in_flight[1], q);
                assert_eq!(stats.peak_in_flight[2], 0, "link 2 unused");
            }
        }
    }

    #[test]
    fn traffic_volume_is_q_invariant() {
        // Packetization reframes the same payload: per-dimension volume
        // must not depend on Q (message count scales with Q).
        let links = [0usize, 1, 0];
        let volume = |q: usize| {
            let (_, meter) = run_spmd_metered::<Packet<Log>, (), _>(2, move |ctx| {
                // 12 elements split into q packets of 12/q.
                let packets: Vec<Log> = (0..q).map(|_| vec![0.0; 12 / q]).collect();
                let _ = pipelined_phase(ctx, &links, packets, |p| p, |p| p, |_, _, _| ());
            });
            (meter.volume_by_dim(), meter.total_messages())
        };
        let (v1, m1) = volume(1);
        let (v4, m4) = volume(4);
        assert_eq!(v1, v4);
        assert_eq!(m4, m1 * 4);
    }

    #[test]
    fn chained_stamped_phases_match_sequential_phases_bitwise() {
        // Two single-link phases run through the stamped primitive with
        // arrival stamps threaded phase-to-phase (and one clock advance at
        // the end) must carry exactly the payloads of two sequential
        // pipelined_phase calls — the tail-run chaining contract.
        let run = |chained: bool| {
            run_spmd::<Packet<Log>, Vec<Log>, _>(2, move |ctx| {
                let mut state = ctx.id() as f64;
                let packets: Vec<Log> = (0..3).map(|i| vec![ctx.id() as f64, i as f64]).collect();
                let mut process = |k: usize, q: usize, p: &mut Log| {
                    state += (k * 31 + q) as f64;
                    p.push(state);
                };
                if chained {
                    let entry = vec![ctx.virtual_now(); 3];
                    let (mid, stamps, _) = pipelined_phase_stamped(
                        ctx,
                        &[0],
                        packets,
                        &entry,
                        |p| p,
                        |p| p,
                        &mut process,
                    );
                    let (fin, stamps, _) = pipelined_phase_stamped(
                        ctx,
                        &[1],
                        mid,
                        &stamps,
                        |p| p,
                        |p| p,
                        &mut process,
                    );
                    for &s in &stamps {
                        ctx.advance_clock_to(s);
                    }
                    fin
                } else {
                    let (mid, _) = pipelined_phase(ctx, &[0], packets, |p| p, |p| p, &mut process);
                    let (fin, _) = pipelined_phase(ctx, &[1], mid, |p| p, |p| p, &mut process);
                    fin
                }
            })
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn channel_rejects_sends_beyond_the_window() {
        // The window violation panics inside the node thread; catch it
        // there (propagating it would abort the whole SPMD scope).
        let results = run_spmd::<Packet<Log>, String, _>(1, |ctx| {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut chan = PacketChannel::new(ctx, 1);
                let mk = |q| Packet::new(0, q, vec![0.0]);
                chan.send(0, mk(0));
                chan.send(0, mk(1)); // second in-flight packet: beyond window
            }))
            .expect_err("over-window send must panic");
            // Drain the one delivered packet so the partner's sends pair up.
            let _ = ctx.recv(0);
            err.downcast_ref::<String>().expect("panic carries a message").clone()
        });
        for msg in results {
            assert!(msg.contains("window"), "unexpected panic message: {msg}");
        }
    }
}
