//! Communication pipelining on the real message-passing machine.
//!
//! [`pipelined_exchange`] executes a CC-cube loop — `K` iterations, each a
//! computation followed by an exchange through `links[k]` — with its
//! computation split into `Q` packets and reorganized exactly as the
//! paper's pipelined CC-cube prescribes: packet `q`'s iteration `k` runs
//! at stage `s = k + q`, and its result is exchanged immediately, so up to
//! `min(Q, K)` messages leave a node concurrently through different links
//! (the multi-port opportunity).
//!
//! The function is *semantically equivalent* to the unpipelined reference
//! loop ([`unpipelined_exchange`]): packets never interact, so reordering
//! `(k, q)` execution across packets preserves every packet's value
//! history. The equivalence is asserted on random CC-cubes in the tests —
//! the executable counterpart of the paper's claim that communication
//! pipelining is a *transformation* of a CC-cube algorithm, not a
//! different algorithm.

use crate::spmd::{Meterable, NodeCtx};

/// The unpipelined CC-cube reference: `K` iterations of
/// "process every packet, then exchange every packet through `links[k]`".
pub fn unpipelined_exchange<M, F>(
    ctx: &NodeCtx<'_, M>,
    links: &[usize],
    mut packets: Vec<M>,
    mut process: F,
) -> Vec<M>
where
    M: Send + Meterable,
    F: FnMut(usize, usize, M) -> M,
{
    for (k, &link) in links.iter().enumerate() {
        let q_count = packets.len();
        for (q, packet) in packets.into_iter().enumerate() {
            let processed = process(k, q, packet);
            ctx.send(link, processed);
        }
        // Receive in the same (q) order the partner sent.
        let mut received = Vec::with_capacity(q_count);
        for _ in 0..q_count {
            received.push(ctx.recv(link));
        }
        packets = received;
    }
    packets
}

/// The pipelined CC-cube: identical result, software-pipelined schedule.
///
/// `process(k, q, packet)` performs packet `q`'s share of iteration `k`'s
/// computation and must be a pure function of its arguments (the pipelined
/// schedule invokes it in stage order `(k+q, k)`, not in the reference
/// loop's `(k, q)` order). Stages run from `0` to `K + Q − 2`; stage `s`
/// processes and sends packets `{q : 0 ≤ s − q < K}` (the paper's
/// prologue/kernel/epilogue), giving each node up to `min(Q, K)` in-flight
/// messages on the distinct links of the window.
pub fn pipelined_exchange<M, F>(
    ctx: &NodeCtx<'_, M>,
    links: &[usize],
    packets: Vec<M>,
    mut process: F,
) -> Vec<M>
where
    M: Send + Meterable,
    F: FnMut(usize, usize, M) -> M,
{
    let k_total = links.len();
    let q_total = packets.len();
    if k_total == 0 || q_total == 0 {
        return packets;
    }
    let mut slots: Vec<Option<M>> = packets.into_iter().map(Some).collect();
    for s in 0..(k_total + q_total - 1) {
        let lo = s.saturating_sub(q_total - 1);
        let hi = s.min(k_total - 1);
        // Send phase: iteration k acts on packet q = s − k. Iterate k
        // ascending on every node so same-link messages stay paired.
        for k in lo..=hi {
            let q = s - k;
            let packet = slots[q].take().expect("packet in flight twice");
            let processed = process(k, q, packet);
            ctx.send(links[k], processed);
        }
        // Receive phase: symmetric windows on all nodes (SPMD), so the
        // matching receives arrive in the same k order.
        for k in lo..=hi {
            let q = s - k;
            slots[q] = Some(ctx.recv(links[k]));
        }
    }
    slots.into_iter().map(|p| p.expect("packet lost")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    /// A packet that records its full history: every (iteration, node it
    /// was processed at) event. Meterable so it can ride the channels.
    type Log = Vec<f64>;

    fn run_both(d: usize, links: Vec<usize>, q: usize) -> (Vec<Vec<Log>>, Vec<Vec<Log>>) {
        let links2 = links.clone();
        let naive = run_spmd::<Log, Vec<Log>, _>(d, move |ctx| {
            let packets: Vec<Log> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            unpipelined_exchange(ctx, &links, packets, |k, _q, mut p| {
                p.push(1000.0 + k as f64);
                p
            })
        });
        let piped = run_spmd::<Log, Vec<Log>, _>(d, move |ctx| {
            let packets: Vec<Log> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            pipelined_exchange(ctx, &links2, packets, |k, _q, mut p| {
                p.push(1000.0 + k as f64);
                p
            })
        });
        (naive, piped)
    }

    #[test]
    fn pipelined_equals_unpipelined_shallow_and_deep() {
        let links = vec![0usize, 1, 0, 2, 0, 1, 0]; // D_3^BR, K = 7
        for q in [1usize, 2, 3, 7, 10, 25] {
            let (naive, piped) = run_both(3, links.clone(), q);
            assert_eq!(naive, piped, "q={q}");
        }
    }

    #[test]
    fn packets_visit_every_node_of_the_subcube() {
        // With a Hamiltonian link sequence, each packet's origin trace
        // (first element) cycles through all nodes: the packet a node ends
        // with started at the node reached by walking the path backwards.
        let links = vec![0usize, 1, 0]; // D_2^BR on a 2-cube
        let (_, piped) = run_both(2, links.clone(), 2);
        for (n, packets) in piped.iter().enumerate() {
            for p in packets {
                // Walk the path from the origin recorded in p[0]: it must
                // land on n.
                let mut cur = p[0] as usize;
                for &l in &links {
                    cur ^= 1 << l;
                }
                assert_eq!(cur, n, "packet origin {} does not reach node {n}", p[0]);
            }
        }
    }

    #[test]
    fn processing_order_within_a_packet_is_sequential() {
        // Every packet's log must contain iterations 1000..1000+K in order
        // regardless of the pipelined schedule.
        let links = vec![0usize, 1, 2, 0, 1, 0, 2];
        let (_, piped) = run_both(3, links.clone(), 4);
        for packets in &piped {
            for p in packets {
                let events: Vec<f64> = p[2..].to_vec();
                let want: Vec<f64> = (0..links.len()).map(|k| 1000.0 + k as f64).collect();
                assert_eq!(events, want);
            }
        }
    }

    #[test]
    fn empty_inputs_are_identity() {
        let results = run_spmd::<Log, Vec<Log>, _>(1, |ctx| {
            let packets = vec![vec![ctx.id() as f64]];
            pipelined_exchange(ctx, &[], packets, |_, _, p| p)
        });
        assert_eq!(results[0], vec![vec![0.0]]);
        assert_eq!(results[1], vec![vec![1.0]]);
    }
}
