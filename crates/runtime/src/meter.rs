//! Traffic accounting for the threaded multicomputer.
//!
//! Every send is recorded per hypercube dimension: message count and data
//! volume (in elements). The meters let tests and experiments confirm that
//! an ordering's *executed* traffic matches what the analytic cost models
//! assumed — e.g. that BR really pushes half of all volume through
//! dimension 0 while permuted-BR spreads it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-dimension traffic counters (shared by all node threads).
#[derive(Debug)]
pub struct TrafficMeter {
    messages: Vec<AtomicU64>,
    elems: Vec<AtomicU64>,
}

impl TrafficMeter {
    /// A meter for a `d`-cube.
    pub fn new(d: usize) -> Self {
        TrafficMeter {
            messages: (0..d.max(1)).map(|_| AtomicU64::new(0)).collect(),
            elems: (0..d.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one message of `elems` elements on dimension `dim`.
    pub fn record(&self, dim: usize, elems: u64) {
        self.messages[dim].fetch_add(1, Ordering::Relaxed);
        self.elems[dim].fetch_add(elems, Ordering::Relaxed);
    }

    /// Messages sent on `dim` so far.
    pub fn messages(&self, dim: usize) -> u64 {
        self.messages[dim].load(Ordering::Relaxed)
    }

    /// Elements sent on `dim` so far.
    pub fn volume(&self, dim: usize) -> u64 {
        self.elems[dim].load(Ordering::Relaxed)
    }

    /// Total messages across dimensions.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total volume across dimensions.
    pub fn total_volume(&self) -> u64 {
        self.elems.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Per-dimension volume snapshot.
    pub fn volume_by_dim(&self) -> Vec<u64> {
        self.elems.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = TrafficMeter::new(3);
        m.record(0, 10);
        m.record(0, 5);
        m.record(2, 7);
        assert_eq!(m.messages(0), 2);
        assert_eq!(m.volume(0), 15);
        assert_eq!(m.messages(1), 0);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_volume(), 22);
        assert_eq!(m.volume_by_dim(), vec![15, 0, 7]);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = std::sync::Arc::new(TrafficMeter::new(2));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record(1, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.messages(1), 8000);
        assert_eq!(m.volume(1), 24000);
    }
}
