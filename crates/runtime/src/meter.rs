//! Traffic accounting for the threaded multicomputer.
//!
//! Every send is recorded per hypercube dimension: message count and data
//! volume (in elements). The meters let tests and experiments confirm that
//! an ordering's *executed* traffic matches what the analytic cost models
//! assumed — e.g. that BR really pushes half of all volume through
//! dimension 0 while permuted-BR spreads it.
//!
//! Accounting is split into two planes:
//!
//! * the **data plane** — block payloads, the traffic the paper's tables
//!   and Figure 2 count; reported by [`TrafficMeter::volume`],
//!   [`TrafficMeter::messages`] and friends;
//! * the **control plane** — protocol messages that carry no block data
//!   (convergence-vote scalars, acknowledgements); reported by the
//!   `control_*` accessors and kept out of the data totals so a
//!   convergence vote can never pollute a block-traffic comparison.
//!
//! A message's plane is declared by its type via
//! [`Meterable::is_control`](crate::spmd::Meterable::is_control).
//!
//! When several independent problems share one fabric (the batch
//! scheduler), every message also carries a *job id*
//! ([`Meterable::job`](crate::spmd::Meterable::job)) and the meter keeps
//! per-job totals next to the per-dimension ones, so each job's data and
//! control traffic is reported separately instead of blending all jobs
//! into one number. Solo programs tag everything job 0 and see exactly the
//! historical totals.

use std::sync::atomic::{AtomicU64, Ordering};

/// One job's traffic totals: data/control messages and elements.
#[derive(Debug, Default)]
struct JobCounters {
    messages: AtomicU64,
    elems: AtomicU64,
    control_messages: AtomicU64,
    control_elems: AtomicU64,
}

/// Lock-free per-dimension traffic counters (shared by all node threads),
/// kept separately for the data and control planes, plus per-job totals.
#[derive(Debug)]
pub struct TrafficMeter {
    messages: Vec<AtomicU64>,
    elems: Vec<AtomicU64>,
    control_messages: Vec<AtomicU64>,
    control_elems: Vec<AtomicU64>,
    jobs: Vec<JobCounters>,
}

impl TrafficMeter {
    /// A meter for a `d`-cube carrying a single (solo) job.
    pub fn new(d: usize) -> Self {
        TrafficMeter::with_jobs(d, 1)
    }

    /// A meter for a `d`-cube shared by `njobs` batch jobs (ids
    /// `0..njobs`).
    pub fn with_jobs(d: usize, njobs: usize) -> Self {
        let counters = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let n = d.max(1);
        TrafficMeter {
            messages: counters(n),
            elems: counters(n),
            control_messages: counters(n),
            control_elems: counters(n),
            jobs: (0..njobs.max(1)).map(|_| JobCounters::default()).collect(),
        }
    }

    /// Number of jobs this meter tracks separately.
    pub fn jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Records one message of `elems` elements on dimension `dim` for
    /// `job`, on the control plane when `control` is set, on the data
    /// plane otherwise.
    ///
    /// # Panics
    /// Panics if `job` is outside the meter's job range — a message tagged
    /// for a job the run never registered means the framing is corrupt.
    pub fn record(&self, dim: usize, elems: u64, control: bool, job: u32) {
        let jc = self
            .jobs
            .get(job as usize)
            .unwrap_or_else(|| panic!("message tagged job {job}, meter tracks {}", self.jobs()));
        if control {
            self.control_messages[dim].fetch_add(1, Ordering::Relaxed);
            self.control_elems[dim].fetch_add(elems, Ordering::Relaxed);
            jc.control_messages.fetch_add(1, Ordering::Relaxed);
            jc.control_elems.fetch_add(elems, Ordering::Relaxed);
        } else {
            self.messages[dim].fetch_add(1, Ordering::Relaxed);
            self.elems[dim].fetch_add(elems, Ordering::Relaxed);
            jc.messages.fetch_add(1, Ordering::Relaxed);
            jc.elems.fetch_add(elems, Ordering::Relaxed);
        }
    }

    /// Data-plane messages sent on `dim` so far.
    pub fn messages(&self, dim: usize) -> u64 {
        self.messages[dim].load(Ordering::Relaxed)
    }

    /// Data-plane elements sent on `dim` so far.
    pub fn volume(&self, dim: usize) -> u64 {
        self.elems[dim].load(Ordering::Relaxed)
    }

    /// Total data-plane messages across dimensions.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total data-plane volume across dimensions.
    pub fn total_volume(&self) -> u64 {
        self.elems.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Per-dimension data-plane volume snapshot.
    pub fn volume_by_dim(&self) -> Vec<u64> {
        self.elems.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Control-plane messages sent on `dim` so far.
    pub fn control_messages(&self, dim: usize) -> u64 {
        self.control_messages[dim].load(Ordering::Relaxed)
    }

    /// Control-plane elements sent on `dim` so far.
    pub fn control_volume(&self, dim: usize) -> u64 {
        self.control_elems[dim].load(Ordering::Relaxed)
    }

    /// Total control-plane messages across dimensions.
    pub fn total_control_messages(&self) -> u64 {
        self.control_messages.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total control-plane volume across dimensions.
    pub fn total_control_volume(&self) -> u64 {
        self.control_elems.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Data-plane messages sent so far by `job`.
    pub fn job_messages(&self, job: usize) -> u64 {
        self.jobs[job].messages.load(Ordering::Relaxed)
    }

    /// Data-plane elements sent so far by `job`.
    pub fn job_volume(&self, job: usize) -> u64 {
        self.jobs[job].elems.load(Ordering::Relaxed)
    }

    /// Control-plane messages sent so far by `job`.
    pub fn job_control_messages(&self, job: usize) -> u64 {
        self.jobs[job].control_messages.load(Ordering::Relaxed)
    }

    /// Control-plane elements sent so far by `job`.
    pub fn job_control_volume(&self, job: usize) -> u64 {
        self.jobs[job].control_elems.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = TrafficMeter::new(3);
        m.record(0, 10, false, 0);
        m.record(0, 5, false, 0);
        m.record(2, 7, false, 0);
        assert_eq!(m.messages(0), 2);
        assert_eq!(m.volume(0), 15);
        assert_eq!(m.messages(1), 0);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_volume(), 22);
        assert_eq!(m.volume_by_dim(), vec![15, 0, 7]);
        // A solo meter tracks one job, and everything lands on it.
        assert_eq!(m.jobs(), 1);
        assert_eq!(m.job_messages(0), 3);
        assert_eq!(m.job_volume(0), 22);
    }

    #[test]
    fn control_plane_is_kept_out_of_data_totals() {
        let m = TrafficMeter::new(2);
        m.record(0, 100, false, 0); // a block
        m.record(0, 1, true, 0); // a convergence vote
        m.record(1, 1, true, 0);
        assert_eq!(m.total_volume(), 100, "votes must not pollute block volume");
        assert_eq!(m.total_messages(), 1);
        assert_eq!(m.control_messages(0), 1);
        assert_eq!(m.control_messages(1), 1);
        assert_eq!(m.total_control_messages(), 2);
        assert_eq!(m.total_control_volume(), 2);
        assert_eq!(m.control_volume(0), 1);
        assert_eq!(m.volume_by_dim(), vec![100, 0]);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = std::sync::Arc::new(TrafficMeter::new(2));
        let mut handles = Vec::new();
        for i in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record(1, 3, i % 2 == 0, 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.messages(1), 4000);
        assert_eq!(m.volume(1), 12000);
        assert_eq!(m.control_messages(1), 4000);
        assert_eq!(m.control_volume(1), 12000);
    }

    #[test]
    fn per_job_totals_split_the_planes() {
        // Two jobs on one meter: the per-dimension totals blend, the
        // per-job accessors keep every job's data and control traffic
        // apart — the batch scheduler's reporting invariant.
        let m = TrafficMeter::with_jobs(2, 2);
        m.record(0, 100, false, 0);
        m.record(1, 40, false, 1);
        m.record(0, 1, true, 1);
        assert_eq!(m.jobs(), 2);
        assert_eq!(m.total_volume(), 140);
        assert_eq!(m.job_volume(0), 100);
        assert_eq!(m.job_volume(1), 40);
        assert_eq!(m.job_messages(0), 1);
        assert_eq!(m.job_messages(1), 1);
        assert_eq!(m.job_control_messages(0), 0);
        assert_eq!(m.job_control_messages(1), 1);
        assert_eq!(m.job_control_volume(1), 1);
        // Per-job sums reproduce the blended totals exactly.
        assert_eq!(m.job_volume(0) + m.job_volume(1), m.total_volume());
    }

    #[test]
    #[should_panic(expected = "meter tracks")]
    fn unregistered_job_panics() {
        let m = TrafficMeter::with_jobs(1, 2);
        m.record(0, 1, false, 2);
    }
}
