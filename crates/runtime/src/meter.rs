//! Traffic accounting for the threaded multicomputer.
//!
//! Every send is recorded per hypercube dimension: message count and data
//! volume (in elements). The meters let tests and experiments confirm that
//! an ordering's *executed* traffic matches what the analytic cost models
//! assumed — e.g. that BR really pushes half of all volume through
//! dimension 0 while permuted-BR spreads it.
//!
//! Accounting is split into two planes:
//!
//! * the **data plane** — block payloads, the traffic the paper's tables
//!   and Figure 2 count; reported by [`TrafficMeter::volume`],
//!   [`TrafficMeter::messages`] and friends;
//! * the **control plane** — protocol messages that carry no block data
//!   (convergence-vote scalars, acknowledgements); reported by the
//!   `control_*` accessors and kept out of the data totals so a
//!   convergence vote can never pollute a block-traffic comparison.
//!
//! A message's plane is declared by its type via
//! [`Meterable::is_control`](crate::spmd::Meterable::is_control).

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-dimension traffic counters (shared by all node threads),
/// kept separately for the data and control planes.
#[derive(Debug)]
pub struct TrafficMeter {
    messages: Vec<AtomicU64>,
    elems: Vec<AtomicU64>,
    control_messages: Vec<AtomicU64>,
    control_elems: Vec<AtomicU64>,
}

impl TrafficMeter {
    /// A meter for a `d`-cube.
    pub fn new(d: usize) -> Self {
        let counters = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let n = d.max(1);
        TrafficMeter {
            messages: counters(n),
            elems: counters(n),
            control_messages: counters(n),
            control_elems: counters(n),
        }
    }

    /// Records one message of `elems` elements on dimension `dim`, on the
    /// control plane when `control` is set, on the data plane otherwise.
    pub fn record(&self, dim: usize, elems: u64, control: bool) {
        if control {
            self.control_messages[dim].fetch_add(1, Ordering::Relaxed);
            self.control_elems[dim].fetch_add(elems, Ordering::Relaxed);
        } else {
            self.messages[dim].fetch_add(1, Ordering::Relaxed);
            self.elems[dim].fetch_add(elems, Ordering::Relaxed);
        }
    }

    /// Data-plane messages sent on `dim` so far.
    pub fn messages(&self, dim: usize) -> u64 {
        self.messages[dim].load(Ordering::Relaxed)
    }

    /// Data-plane elements sent on `dim` so far.
    pub fn volume(&self, dim: usize) -> u64 {
        self.elems[dim].load(Ordering::Relaxed)
    }

    /// Total data-plane messages across dimensions.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total data-plane volume across dimensions.
    pub fn total_volume(&self) -> u64 {
        self.elems.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Per-dimension data-plane volume snapshot.
    pub fn volume_by_dim(&self) -> Vec<u64> {
        self.elems.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Control-plane messages sent on `dim` so far.
    pub fn control_messages(&self, dim: usize) -> u64 {
        self.control_messages[dim].load(Ordering::Relaxed)
    }

    /// Control-plane elements sent on `dim` so far.
    pub fn control_volume(&self, dim: usize) -> u64 {
        self.control_elems[dim].load(Ordering::Relaxed)
    }

    /// Total control-plane messages across dimensions.
    pub fn total_control_messages(&self) -> u64 {
        self.control_messages.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total control-plane volume across dimensions.
    pub fn total_control_volume(&self) -> u64 {
        self.control_elems.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let m = TrafficMeter::new(3);
        m.record(0, 10, false);
        m.record(0, 5, false);
        m.record(2, 7, false);
        assert_eq!(m.messages(0), 2);
        assert_eq!(m.volume(0), 15);
        assert_eq!(m.messages(1), 0);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_volume(), 22);
        assert_eq!(m.volume_by_dim(), vec![15, 0, 7]);
    }

    #[test]
    fn control_plane_is_kept_out_of_data_totals() {
        let m = TrafficMeter::new(2);
        m.record(0, 100, false); // a block
        m.record(0, 1, true); // a convergence vote
        m.record(1, 1, true);
        assert_eq!(m.total_volume(), 100, "votes must not pollute block volume");
        assert_eq!(m.total_messages(), 1);
        assert_eq!(m.control_messages(0), 1);
        assert_eq!(m.control_messages(1), 1);
        assert_eq!(m.total_control_messages(), 2);
        assert_eq!(m.total_control_volume(), 2);
        assert_eq!(m.control_volume(0), 1);
        assert_eq!(m.volume_by_dim(), vec![100, 0]);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = std::sync::Arc::new(TrafficMeter::new(2));
        let mut handles = Vec::new();
        for i in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.record(1, 3, i % 2 == 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.messages(1), 4000);
        assert_eq!(m.volume(1), 12000);
        assert_eq!(m.control_messages(1), 4000);
        assert_eq!(m.control_volume(1), 12000);
    }
}
