//! Hypercube collectives on the threaded multicomputer.
//!
//! Classical recursive-doubling algorithms, all in `d` neighbor exchanges
//! (or `d` one-way hops for rooted operations): broadcast and gather along
//! spanning binomial trees, all-gather by dimension exchange, and a
//! generic all-reduce. They are not on the Jacobi algorithms' critical
//! path — transitions are pure neighbor exchanges — but the solver uses
//! them for convergence votes and result collection, and they double as a
//! stress test of the runtime's channel fabric.

use crate::spmd::{Meterable, NodeCtx};

/// One-to-all broadcast from `root` over the binomial spanning tree:
/// `d` rounds; in round `k` (descending dimension), every node that
/// already holds the value forwards it across dimension `k`.
///
/// Every node must call this; returns the broadcast value.
pub fn broadcast<M: Send + Meterable + Clone>(
    ctx: &NodeCtx<'_, M>,
    root: usize,
    value: Option<M>,
) -> M {
    let d = ctx.dim();
    let rel = ctx.id() ^ root; // relative address: root at 0
    let mut have = if rel == 0 {
        Some(value.expect("root must supply the broadcast value"))
    } else {
        debug_assert!(value.is_none(), "non-root nodes supply None");
        None
    };
    // Invariant: before round k the holders are exactly the nodes with
    // rel ≡ 0 (mod 2^{k+1}); each sends across dimension k to the node
    // with rel ≡ 2^k (mod 2^{k+1}), doubling the holder set.
    for k in (0..d).rev() {
        let low = (1usize << (k + 1)) - 1;
        if rel & low == 0 {
            let v = have.clone().expect("sender must hold the value");
            ctx.send(k, v);
        } else if rel & low == 1 << k {
            have = Some(ctx.recv(k));
        }
    }
    have.expect("broadcast did not reach this node")
}

/// All-gather by dimension exchange: every node contributes one value and
/// receives the vector of all `2^d` contributions, indexed by node id.
pub fn all_gather<M: Send + Meterable + Clone>(ctx: &NodeCtx<'_, M>, value: M) -> Vec<Option<M>> {
    let d = ctx.dim();
    let p = 1usize << d;
    let mut have: Vec<Option<M>> = vec![None; p];
    have[ctx.id()] = Some(value);
    for k in 0..d {
        // Exchange everything gathered so far with the dim-k neighbor.
        // The pieces this node holds so far are exactly the ids agreeing
        // with it on bits ≥ k... send them one by one (count doubles).
        let mine: Vec<(usize, M)> =
            have.iter().enumerate().filter_map(|(i, v)| v.clone().map(|v| (i, v))).collect();
        for (i, v) in &mine {
            ctx.send(k, v.clone());
            // Receive the partner's piece; its index is ours with bit k
            // flipped (the partner enumerates in the same order).
            let received = ctx.recv(k);
            have[i ^ (1 << k)] = Some(received);
        }
    }
    have
}

/// All-reduce with an arbitrary associative-commutative fold.
pub fn all_reduce<M, F>(ctx: &NodeCtx<'_, M>, mut value: M, fold: F) -> M
where
    M: Send + Meterable + Clone,
    F: Fn(M, M) -> M,
{
    for k in 0..ctx.dim() {
        let other = ctx.exchange(k, value.clone());
        value = fold(value, other);
    }
    value
}

/// Gather to `root` along the binomial tree: the inverse schedule of
/// [`broadcast`]. Returns `Some(vec indexed by node)` at the root, `None`
/// elsewhere.
pub fn gather<M: Send + Meterable + Clone>(
    ctx: &NodeCtx<'_, M>,
    root: usize,
    value: M,
) -> Option<Vec<Option<M>>> {
    let d = ctx.dim();
    let p = 1usize << d;
    let rel = ctx.id() ^ root;
    let mut have: Vec<Option<M>> = vec![None; p];
    have[ctx.id()] = Some(value);
    // Ascend: in round k (ascending), nodes with rel's low k bits clear and
    // bit k set send their accumulated subtree to the dim-k neighbor.
    for k in 0..d {
        if rel & ((1 << (k + 1)) - 1) == 1 << k {
            // Sender: ship every piece collected so far.
            let mine: Vec<M> = have.iter().filter_map(|v| v.clone()).collect();
            for v in mine {
                ctx.send(k, v);
            }
        } else if rel & ((1 << (k + 1)) - 1) == 0 {
            // Receiver: the partner's subtree holds 2^k pieces.
            let count = 1usize << k;
            let partner_base = ctx.id() ^ (1 << k);
            // Partner sends its pieces in ascending id order; reconstruct
            // the same order here.
            let mut ids: Vec<usize> = (0..p)
                .filter(|&i| {
                    // ids in the partner's subtree: agree with partner on
                    // bits ≥ k+1 (relative to root ordering), bit k set
                    // like the partner.
                    (i ^ partner_base) & !((1 << k) - 1) == 0
                })
                .collect();
            ids.sort_unstable();
            debug_assert_eq!(ids.len(), count);
            for i in ids {
                have[i] = Some(ctx.recv(k));
            }
        }
    }
    if rel == 0 {
        Some(have)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn broadcast_reaches_all_nodes() {
        for d in 0..=4 {
            for root in [0usize, (1 << d) - 1] {
                let results = run_spmd::<u64, u64, _>(d, move |ctx| {
                    let value = if ctx.id() == root { Some(42u64) } else { None };
                    broadcast(ctx, root, value)
                });
                assert!(results.iter().all(|&v| v == 42), "d={d} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_from_interior_root() {
        let d = 3;
        let root = 5;
        let results = run_spmd::<u64, u64, _>(d, move |ctx| {
            let value = if ctx.id() == root { Some(7u64) } else { None };
            broadcast(ctx, root, value)
        });
        assert_eq!(results, vec![7; 8]);
    }

    #[test]
    fn all_gather_collects_everything_in_order() {
        for d in 0..=4 {
            let results = run_spmd::<u64, Vec<Option<u64>>, _>(d, |ctx| {
                all_gather(ctx, (ctx.id() * 10) as u64)
            });
            for got in results {
                let flat: Vec<u64> = got.into_iter().map(|v| v.unwrap()).collect();
                let want: Vec<u64> = (0..(1u64 << d)).map(|i| i * 10).collect();
                assert_eq!(flat, want, "d={d}");
            }
        }
    }

    #[test]
    fn all_reduce_product() {
        let results =
            run_spmd::<f64, f64, _>(3, |ctx| all_reduce(ctx, (ctx.id() + 1) as f64, |a, b| a * b));
        let want = (1..=8).product::<usize>() as f64;
        for r in results {
            assert_eq!(r, want);
        }
    }

    #[test]
    fn gather_assembles_at_root_only() {
        for d in 1..=4 {
            let root = (1usize << d) - 1;
            let results = run_spmd::<u64, Option<Vec<Option<u64>>>, _>(d, move |ctx| {
                gather(ctx, root, ctx.id() as u64 + 100)
            });
            for (n, r) in results.into_iter().enumerate() {
                if n == root {
                    let flat: Vec<u64> = r.unwrap().into_iter().map(|v| v.unwrap()).collect();
                    let want: Vec<u64> = (0..(1u64 << d)).map(|i| i + 100).collect();
                    assert_eq!(flat, want, "d={d}");
                } else {
                    assert!(r.is_none(), "non-root {n} got a gather result");
                }
            }
        }
    }
}
