//! The throttled link fabric: port-model enforcement over the channel
//! transport, driven by a deterministic virtual clock.
//!
//! The raw channel transport of [`crate::spmd`] is effectively an all-port
//! machine with free transmission — messages are pointers, so measured
//! wall time cannot track the `Ts + S·Tw` costs the paper's model predicts
//! (PR 3 measured 0.99x where the model said 1.45x). This module closes
//! that gap: under [`FabricModel::Throttled`] every send is *charged*
//! against a [`Machine`] by a per-node virtual clock —
//!
//! * the node CPU issues the start-up serially (`now += Ts`);
//! * the transmission then occupies **a port** (one for
//!   [`PortModel::OnePort`], `k` for [`PortModel::KPort`], one per link for
//!   [`PortModel::AllPort`]) **and the outgoing link** for `S·Tw`, starting
//!   no earlier than the CPU, the acquired port, or the link's previous
//!   transmission — links serialize, ports are acquired
//!   earliest-available (a list schedule, the dynamic counterpart of the
//!   cost model's LPT);
//! * the message is stamped with its transmission-end time, and the
//!   receiver's clock advances to that stamp — waiting for data is virtual
//!   time spent.
//!
//! The clocks are max-plus dataflow over the FIFO channel order, so the
//! measured makespan (`max` over the nodes' final clocks, reported by
//! [`run_spmd_fabric`](crate::spmd::run_spmd_fabric)) is **deterministic**:
//! it depends only on the program's message pattern and the machine
//! parameters, never on OS scheduling. That is what lets tests and benches
//! compare *measured* phase times against the analytic model and the
//! network simulator to tight tolerances, and what finally makes ordering
//! experiments (degree-4 vs BR under shallow pipelining) a measurable
//! runtime fact instead of only a priced one.
//!
//! [`FabricModel::Degraded`] generalizes the charge to **per-link
//! machines that evolve over epochs**: a seeded [`Scenario`] scales each
//! directed link's `Ts`/`Tw` by its own impairment timeline (heterogeneity,
//! jitter walks, degradation episodes) and can kill edges outright. The
//! epoch is the clock's barrier generation, so every node evaluates the
//! scenario at the same, scheduling-independent point — impaired runs
//! replay bit for bit from the scenario seed. Sending across a dead edge
//! is a protocol error (it panics): adaptive drivers route around dead
//! edges instead. Each send's *service time* (`Ts_eff + S·Tw_eff`, no
//! queueing) is also recorded into a bounded per-node sample window
//! ([`LinkClock::take_window`]) — live [`FabricStats`] an adaptive driver
//! feeds back into [`Machine::calibrate`] mid-run.
//!
//! Computation is deliberately *free* on the virtual clock: the fabric
//! measures communication, so measured-vs-predicted comparisons against
//! the (communication-only) cost models are apples to apples. Every
//! message that moves is charged, control-plane traffic (convergence
//! votes) included — programs comparing against a price that omits such
//! protocol messages should disable them (the eigensolver's
//! `force_sweeps` does exactly that).
//!
//! The inverse direction — measuring the channel transport's own
//! effective parameters with a wall clock — is
//! [`measure_channel_fabric`], whose samples [`Machine::calibrate`] fits.

use crate::machine::{FabricStats, Machine, PortModel};
use crate::scenario::Scenario;
use crate::spmd::run_spmd;
use crate::trace::{SinkHandle, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// What the link layer enforces.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FabricModel {
    /// The raw channel transport: all-port, free transmission, no clock.
    /// This is the historical behavior and the default.
    #[default]
    Free,
    /// Every message is charged `Ts + S·Tw` against the machine's port
    /// configuration on a deterministic virtual clock.
    Throttled(Machine),
    /// Per-link, per-epoch machines from a seeded impairment scenario
    /// (see [`Scenario`]): each directed link charges its own effective
    /// `Ts`/`Tw` at the current barrier epoch, dead edges reject sends,
    /// and every send's service time feeds the calibration window.
    Degraded(Arc<Scenario>),
}

impl FabricModel {
    /// Whether this fabric runs a virtual clock.
    pub fn is_throttled(&self) -> bool {
        !matches!(self, FabricModel::Free)
    }

    /// The *baseline* enforced machine, if any: the uniform machine for
    /// [`FabricModel::Throttled`], the scenario's clean base machine for
    /// [`FabricModel::Degraded`] (per-link effective machines vary around
    /// it — see [`Scenario::machine_for`]).
    pub fn machine(&self) -> Option<Machine> {
        match self {
            FabricModel::Free => None,
            FabricModel::Throttled(m) => Some(*m),
            FabricModel::Degraded(sc) => Some(sc.base()),
        }
    }

    /// The impairment scenario, if degraded.
    pub fn scenario(&self) -> Option<&Arc<Scenario>> {
        match self {
            FabricModel::Degraded(sc) => Some(sc),
            _ => None,
        }
    }

    /// Validates the model at construction time, the
    /// `BatchConfigError`-style typed gate: a `KPort(0)` machine — zero
    /// transmit ports can move no message — is rejected here instead of
    /// by an `assert!` deep inside driver spawn.
    pub fn validate(&self) -> Result<(), FabricConfigError> {
        match self.machine().map(|m| m.ports) {
            Some(PortModel::KPort(0)) => Err(FabricConfigError::ZeroPorts),
            _ => Ok(()),
        }
    }
}

/// Why a [`FabricModel`] cannot be enforced. Surface this from checked
/// option constructors (`JacobiOptions::validate`, `BatchOptions::new`)
/// so misconfigurations fail at configuration time with a typed error,
/// not mid-spawn with an assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricConfigError {
    /// `PortModel::KPort(0)`: a k-port fabric needs at least one port.
    ZeroPorts,
}

impl std::fmt::Display for FabricConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricConfigError::ZeroPorts => {
                write!(f, "a k-port fabric needs at least one port (got KPort(0))")
            }
        }
    }
}

impl std::error::Error for FabricConfigError {}

/// Outcome of a fabric run: the virtual times at which each node finished.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// The model that was enforced.
    pub model: FabricModel,
    /// `max` over nodes of their final virtual clock (0 under
    /// [`FabricModel::Free`]).
    pub makespan: f64,
    /// Each node's final virtual clock, in label order.
    pub node_times: Vec<f64>,
}

/// Cap on the per-node calibration window: old samples are kept (an
/// adaptive driver drains the window every sweep anyway), new ones are
/// dropped once full, so an un-drained degraded run stays bounded.
const WINDOW_CAP: usize = 4096;

/// Per-node clock state: the CPU's current virtual time plus the
/// availability horizon of every outgoing link and transmit port.
struct ClockState {
    now: f64,
    /// Barriers passed so far; its parity selects the [`SharedClock`]
    /// slot for the next synchronization, and its value is the **epoch**
    /// at which a degraded scenario is evaluated — a deterministic,
    /// node-consistent virtual-time index.
    barrier_gen: usize,
    /// `link_free[dim]`: when this node's outgoing link across `dim` ends
    /// its current transmission. Links are full-duplex — each direction is
    /// owned by its sender — so this state is node-local, which is what
    /// keeps the clock deterministic under real thread scheduling.
    link_free: Vec<f64>,
    /// Transmit-port availability; empty for all-port (the link array
    /// already *is* one port per link).
    port_free: Vec<f64>,
    /// Live `(elems, service time)` samples of this node's sends under a
    /// degraded fabric — the mid-run calibration feed.
    window: Vec<(f64, f64)>,
}

/// Per-send metadata a message declares for metering and tracing: the
/// trace's (job, k, q) headers ride here so the clock can stamp them
/// onto its [`TraceEvent::Send`] spans.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SendMeta {
    pub elems: u64,
    pub job: u32,
    pub kq: Option<(u32, u32)>,
    pub control: bool,
}

/// A node's view of the fabric: the model plus (when throttled) its clock.
pub struct LinkClock {
    model: FabricModel,
    node: usize,
    state: Mutex<ClockState>,
    sink: SinkHandle,
}

impl LinkClock {
    /// A clock for node `node` of a `d`-cube under `model`, untraced.
    /// (The runtime proper always goes through [`LinkClock::with_sink`];
    /// this shorthand serves the clock unit tests.)
    #[cfg(test)]
    pub(crate) fn new(model: FabricModel, node: usize, d: usize) -> Self {
        LinkClock::with_sink(model, node, d, SinkHandle::nop())
    }

    /// [`LinkClock::new`] recording its link activity into `sink`.
    pub(crate) fn with_sink(model: FabricModel, node: usize, d: usize, sink: SinkHandle) -> Self {
        let ports = match model.machine().map(|m| m.ports) {
            None | Some(PortModel::AllPort) => 0,
            Some(PortModel::OnePort) => 1,
            // KPort(0) is rejected at configuration time by
            // `FabricModel::validate`; clamping here keeps this
            // constructor infallible for the validated models.
            Some(PortModel::KPort(k)) => k.max(1),
        };
        LinkClock {
            model,
            node,
            state: Mutex::new(ClockState {
                now: 0.0,
                barrier_gen: 0,
                link_free: vec![0.0; d.max(1)],
                port_free: vec![0.0; ports],
                window: Vec::new(),
            }),
            sink,
        }
    }

    /// The trace sink this clock (and its node) records into.
    pub(crate) fn trace(&self) -> &SinkHandle {
        &self.sink
    }

    /// Whether this clock runs at all (false on a free fabric).
    pub(crate) fn throttled(&self) -> bool {
        self.model.is_throttled()
    }

    /// The clock-state lock, recovering from poison: the state is a plain
    /// bag of `f64` horizons that is valid after any panic, and mapping
    /// poison to a second panic would cascade one worker's failure into
    /// every peer, masking the root cause in the thread scope's report.
    fn lock_state(&self) -> MutexGuard<'_, ClockState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Charges one `elems`-element send across `dim`; returns the arrival
    /// stamp to travel with the message (0 when free). Untagged test
    /// shorthand for [`LinkClock::on_send_meta`].
    #[cfg(test)]
    pub(crate) fn on_send(&self, dim: usize, elems: u64) -> f64 {
        self.on_send_meta(dim, 0.0, &SendMeta { elems, ..SendMeta::default() })
    }

    /// The full send charge, with an explicit *data-readiness* time and
    /// the message's trace metadata: the transmission starts no earlier
    /// than `ready` — the arrival stamp of the received packet this
    /// message forwards. The CPU still issues the start-up serially in
    /// program order (`now += Ts`), but it does not wait for the data:
    /// this is the comm-processor model a pipelined phase needs, where
    /// iteration `k+1`'s early packets depart while iteration `k`'s late
    /// ones are still in flight.
    ///
    /// # Panics
    /// Under [`FabricModel::Degraded`], sending across an edge that is
    /// dead at the current epoch is a protocol error: the adaptive layer
    /// must route around dead edges, never through them.
    pub(crate) fn on_send_meta(&self, dim: usize, ready: f64, meta: &SendMeta) -> f64 {
        let elems = meta.elems;
        let mut st = self.lock_state();
        let (ts, tw) = match &self.model {
            FabricModel::Free => return 0.0,
            FabricModel::Throttled(m) => (m.ts, m.tw),
            FabricModel::Degraded(sc) => {
                let epoch = st.barrier_gen;
                assert!(
                    sc.edge_alive(self.node, dim, epoch),
                    "send across dead link (node {}, dim {dim}) at epoch {epoch}: \
                     route around dead edges instead",
                    self.node
                );
                let (fts, ftw) = sc.factors(self.node, dim, epoch);
                let base = sc.base();
                let (ts, tw) = (base.ts * fts, base.tw * ftw);
                if st.window.len() < WINDOW_CAP {
                    st.window.push((elems as f64, ts + elems as f64 * tw));
                }
                (ts, tw)
            }
        };
        // Start-up: issued serially by the node CPU.
        st.now += ts;
        // Transmission: waits for the data dependency, then acquires a
        // port (earliest available) and the outgoing link.
        let issued = st.now;
        let mut start = issued.max(ready).max(st.link_free[dim]);
        let port =
            (0..st.port_free.len()).min_by(|&a, &b| st.port_free[a].total_cmp(&st.port_free[b]));
        if let Some(p) = port {
            start = start.max(st.port_free[p]);
            st.port_free[p] = start + elems as f64 * tw;
        }
        let end = start + elems as f64 * tw;
        st.link_free[dim] = end;
        if self.sink.is_enabled() {
            let epoch = st.barrier_gen;
            drop(st);
            self.sink.emit(self.node, || TraceEvent::Send {
                dim,
                elems,
                job: meta.job,
                kq: meta.kq,
                control: meta.control,
                epoch,
                issued,
                ready,
                start,
                end,
            });
        }
        end
    }

    /// Advances the clock to a received message's arrival stamp.
    pub(crate) fn on_recv(&self, stamp: f64) {
        if !self.model.is_throttled() {
            return;
        }
        let mut st = self.lock_state();
        st.now = st.now.max(stamp);
    }

    /// This node's current virtual time (0 under [`FabricModel::Free`]).
    pub fn now(&self) -> f64 {
        if !self.model.is_throttled() {
            return 0.0;
        }
        self.lock_state().now
    }

    /// The current epoch: barriers passed so far. This is the index a
    /// degraded scenario is evaluated at — every node that has passed the
    /// same barriers agrees on it, whatever the OS scheduler did.
    pub fn epoch(&self) -> usize {
        self.lock_state().barrier_gen
    }

    /// Drains the degraded-send calibration window gathered since the
    /// last drain: live [`FabricStats`] for [`Machine::calibrate`].
    /// Always empty on free and uniformly-throttled fabrics.
    pub fn take_window(&self) -> FabricStats {
        let mut st = self.lock_state();
        let mut stats = FabricStats::new();
        for (elems, secs) in st.window.drain(..) {
            stats.record(elems, secs);
        }
        stats
    }

    /// First half of a barrier's virtual-time synchronization: folds this
    /// node's clock into the current generation's slot and returns that
    /// slot. `None` on a free fabric (no sync needed).
    pub(crate) fn begin_barrier(&self, shared: &SharedClock) -> Option<usize> {
        if !self.model.is_throttled() {
            return None;
        }
        let mut st = self.lock_state();
        let slot = st.barrier_gen & 1;
        st.barrier_gen += 1;
        shared.fold_in(slot, st.now);
        Some(slot)
    }

    /// Second half, after the real barrier wait: adopts the generation's
    /// maximum and zeroes the *other* slot for the next generation. The
    /// caller must pass a second barrier wait after this before any node
    /// can reach its next `begin_barrier` — that wait is what makes the
    /// two-slot scheme race-free: a fast node cannot fold generation
    /// `g + 1` into a slot a slow node is still reading or resetting.
    pub(crate) fn finish_barrier(&self, shared: &SharedClock, slot: usize) {
        let t = shared.read(slot);
        shared.reset(slot ^ 1);
        let mut st = self.lock_state();
        st.now = st.now.max(t);
        if self.sink.is_enabled() {
            let (epoch, time) = (st.barrier_gen, st.now);
            drop(st);
            self.sink.emit(self.node, || TraceEvent::Barrier { epoch, time });
        }
    }
}

/// The barrier clock: one max-only slot per barrier-generation parity.
/// Non-negative `f64`s order identically to their IEEE-754 bit patterns,
/// so `fetch_max` on the bits is an atomic floating-point max. Two slots
/// alternate so one generation's maximum can be read while the next
/// generation's slot is already zeroed — see
/// [`LinkClock::finish_barrier`] for the protocol.
#[derive(Debug, Default)]
pub(crate) struct SharedClock([AtomicU64; 2]);

impl SharedClock {
    pub(crate) fn new() -> Self {
        SharedClock::default()
    }

    fn fold_in(&self, slot: usize, t: f64) {
        debug_assert!(t >= 0.0, "virtual time went negative");
        self.0[slot].fetch_max(t.to_bits(), Ordering::Relaxed);
    }

    fn read(&self, slot: usize) -> f64 {
        f64::from_bits(self.0[slot].load(Ordering::Relaxed))
    }

    fn reset(&self, slot: usize) {
        self.0[slot].store(0, Ordering::Relaxed);
    }
}

/// Measures the live channel transport with a wall clock: every node pair
/// exchanges messages of each size across dimension 0, the exchange plus
/// one read pass over the received payload is timed, and every node's
/// samples are pooled. Feed the result to [`Machine::calibrate`].
///
/// The read pass matters: the channels ship pointers, so the bytes only
/// cross the cache hierarchy when the receiver touches them — which is
/// exactly when a solver pays for an arrived block. Without it the slope
/// (`Tw`) would be indistinguishable from scheduler noise.
pub fn measure_channel_fabric(d: usize, sizes: &[usize], reps: usize) -> FabricStats {
    assert!(!sizes.is_empty() && reps >= 1);
    let pooled = Mutex::new(FabricStats::new());
    run_spmd::<Vec<f64>, (), _>(d, |ctx| {
        let mut local = FabricStats::new();
        for &elems in sizes {
            // Pre-build the payloads: allocation/zeroing is message
            // *assembly*, not transport, so it stays outside the timer.
            let mut payloads: Vec<Vec<f64>> = (0..=reps).map(|_| vec![0.0; elems]).collect();
            // One warm-up exchange per size primes the channel and caches.
            let warm = ctx.exchange(0, payloads.pop().expect("warm-up payload"));
            std::hint::black_box(warm.iter().sum::<f64>());
            for payload in payloads {
                ctx.barrier();
                let t0 = Instant::now();
                let got = ctx.exchange(0, payload);
                let sum: f64 = got.iter().sum();
                let secs = t0.elapsed().as_secs_f64();
                std::hint::black_box(sum);
                local.record(elems as f64, secs);
            }
        }
        // The pool is append-only sample data — valid after any panic, so
        // recover the lock instead of cascading a peer's failure.
        pooled.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).merge(&local);
    });
    pooled.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One-call calibration of the channel runtime: probes dimension-0
/// exchanges at three sizes and fits a [`Machine`] to the medians. This is
/// the machine to hand `Pipelining::Auto` when the solve will run on the
/// channel runtime itself rather than the paper's Figure-2 hardware.
pub fn calibrate_channel_machine(d: usize) -> Machine {
    // Three distinct probe sizes with finite wall-clock timings: the fit
    // cannot hit a degenerate-input error, so the shim's fallback is dead
    // code here — but an infallible signature is the right contract for a
    // one-call convenience.
    Machine::calibrate_or_default(&measure_channel_fabric(d, &[256, 4096, 32768], 9))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{LinkDeath, ScenarioSpec};

    fn stamps(clock: &LinkClock, sends: &[(usize, u64)]) -> Vec<f64> {
        sends.iter().map(|&(dim, elems)| clock.on_send(dim, elems)).collect()
    }

    #[test]
    fn free_fabric_keeps_the_clock_at_zero() {
        let clock = LinkClock::new(FabricModel::Free, 0, 3);
        assert_eq!(clock.on_send(0, 1000), 0.0);
        clock.on_recv(42.0);
        assert_eq!(clock.now(), 0.0);
    }

    #[test]
    fn all_port_serializes_startups_but_overlaps_links() {
        // Ts = 1, Tw = 1, 5-element messages on distinct links: start-ups
        // serialize on the CPU (1, 2, 3), transmissions overlap fully.
        let m = Machine::all_port(1.0, 1.0);
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 3);
        assert_eq!(stamps(&clock, &[(0, 5), (1, 5), (2, 5)]), vec![6.0, 7.0, 8.0]);
    }

    #[test]
    fn same_link_transmissions_serialize_under_every_port_model() {
        let m = Machine::all_port(1.0, 1.0);
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 2);
        // Second send on link 0 waits for the first to clear the wire.
        assert_eq!(stamps(&clock, &[(0, 5), (0, 5)]), vec![6.0, 11.0]);
    }

    #[test]
    fn one_port_serializes_across_links() {
        let m = Machine::one_port(1.0, 1.0);
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 3);
        // The single transmit port is busy until 6; the second message
        // (distinct link!) still queues behind it.
        assert_eq!(stamps(&clock, &[(0, 5), (1, 5)]), vec![6.0, 11.0]);
    }

    #[test]
    fn k_port_runs_k_transmissions_then_queues() {
        let m = Machine { ts: 1.0, tw: 1.0, ports: PortModel::KPort(2) };
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 3);
        // Ports free at 6 and 7; the third message takes the earliest (6).
        assert_eq!(stamps(&clock, &[(0, 5), (1, 5), (2, 5)]), vec![6.0, 7.0, 11.0]);
    }

    #[test]
    fn zero_port_machines_are_a_typed_configuration_error() {
        // The old deep-spawn assert is now a construction-time gate.
        let m = Machine { ts: 1.0, tw: 1.0, ports: PortModel::KPort(0) };
        assert_eq!(
            FabricModel::Throttled(m).validate(),
            Err(FabricConfigError::ZeroPorts),
            "KPort(0) must be rejected with a typed error"
        );
        assert!(FabricModel::Free.validate().is_ok());
        assert!(FabricModel::Throttled(Machine::paper_figure2()).validate().is_ok());
        let ok = Machine { ts: 1.0, tw: 1.0, ports: PortModel::KPort(1) };
        assert!(FabricModel::Throttled(ok).validate().is_ok());
        assert!(FabricConfigError::ZeroPorts.to_string().contains("KPort(0)"));
    }

    #[test]
    fn poisoned_clock_state_is_recovered_not_cascaded() {
        // A worker that panics while holding its clock lock must not turn
        // every later clock touch into a poison-panic: the state is plain
        // horizon data, so the lock is recovered and the original panic
        // stays the only one.
        let m = Machine::all_port(1.0, 1.0);
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 2);
        assert_eq!(clock.on_send(0, 5), 6.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = clock.state.lock().unwrap();
            panic!("original worker failure");
        }));
        assert!(caught.is_err());
        assert!(clock.state.is_poisoned(), "the panic above must have poisoned the lock");
        // Every API entry must keep working on the recovered state.
        assert_eq!(clock.on_send(0, 5), 11.0);
        clock.on_recv(100.0);
        assert_eq!(clock.now(), 100.0);
        assert_eq!(clock.epoch(), 0);
        let shared = SharedClock::new();
        let slot = clock.begin_barrier(&shared).expect("throttled");
        clock.finish_barrier(&shared, slot);
        assert!(clock.take_window().is_empty());
    }

    #[test]
    fn recv_advances_to_the_stamp_monotonically() {
        let m = Machine::all_port(1.0, 1.0);
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 1);
        clock.on_recv(10.0);
        assert_eq!(clock.now(), 10.0);
        clock.on_recv(4.0); // late-arriving stamp from the past: no rewind
        assert_eq!(clock.now(), 10.0);
        // Next send starts from the advanced clock.
        assert_eq!(clock.on_send(0, 2), 13.0);
    }

    #[test]
    fn shared_clock_is_a_per_slot_float_max() {
        let shared = SharedClock::new();
        shared.fold_in(0, 1.5);
        shared.fold_in(0, 100.25);
        shared.fold_in(1, 7.0);
        assert_eq!(shared.read(0), 100.25);
        assert_eq!(shared.read(1), 7.0, "slots are independent");
        shared.reset(0);
        assert_eq!(shared.read(0), 0.0);
        assert_eq!(shared.read(1), 7.0);
    }

    #[test]
    fn barrier_halves_alternate_slots_and_reset_the_other() {
        let shared = SharedClock::new();
        let m = Machine::all_port(1.0, 1.0);
        let clock = LinkClock::new(FabricModel::Throttled(m), 0, 1);
        clock.on_recv(10.0);
        let s0 = clock.begin_barrier(&shared).expect("throttled");
        assert_eq!(s0, 0);
        clock.finish_barrier(&shared, s0);
        assert_eq!(clock.now(), 10.0);
        // Next generation uses the other (freshly zeroed) slot.
        let s1 = clock.begin_barrier(&shared).expect("throttled");
        assert_eq!(s1, 1);
        clock.finish_barrier(&shared, s1);
        // Generation 2 reuses slot 0, which generation 1 reset: it must
        // hold only this generation's fold, not the stale 10.0.
        clock.on_recv(3.0); // below current now; no effect
        let s2 = clock.begin_barrier(&shared).expect("throttled");
        assert_eq!(s2, 0);
        assert_eq!(shared.read(0), 10.0, "fold carries the node's own now");
    }

    #[test]
    fn degraded_clock_charges_per_link_effective_machines() {
        // A clean scenario charges exactly the base machine; an impaired
        // one charges the per-link factors — and replays identically.
        let base = Machine::all_port(1.0, 1.0);
        let clean = Arc::new(Scenario::new(2, ScenarioSpec::clean(9, base)).expect("clean"));
        let clock = LinkClock::new(FabricModel::Degraded(clean), 0, 2);
        assert_eq!(stamps(&clock, &[(0, 5), (1, 5)]), vec![6.0, 7.0]);

        let spec = ScenarioSpec {
            hetero_spread: 1.0,
            ..ScenarioSpec::clean(3, Machine::all_port(10.0, 2.0))
        };
        let sc = Arc::new(Scenario::new(2, spec).expect("hetero"));
        let (fts, ftw) = sc.factors(1, 0, 0);
        let clock = LinkClock::new(FabricModel::Degraded(sc.clone()), 1, 2);
        let stamp = clock.on_send(0, 5);
        let want = 10.0 * fts + 5.0 * 2.0 * ftw;
        assert!((stamp - want).abs() < 1e-12, "stamp {stamp} vs {want}");
        // Replay: a fresh clock over the same scenario charges the same.
        let clock2 = LinkClock::new(FabricModel::Degraded(sc), 1, 2);
        assert_eq!(clock2.on_send(0, 5), stamp);
    }

    #[test]
    fn degraded_sends_feed_the_calibration_window() {
        // Service times (no queueing) are recorded: with clean factors the
        // window is an exact affine law, so `calibrate` recovers the base
        // machine to rounding.
        let base = Machine::all_port(7.0, 3.0);
        let sc = Arc::new(Scenario::new(2, ScenarioSpec::clean(1, base)).expect("clean"));
        let clock = LinkClock::new(FabricModel::Degraded(sc), 0, 2);
        for &(dim, elems) in &[(0usize, 10u64), (1, 100), (0, 1000), (1, 10)] {
            clock.on_send(dim, elems);
        }
        let window = clock.take_window();
        assert_eq!(window.len(), 4);
        let fit = Machine::calibrate(&window).expect("three distinct sizes");
        assert!((fit.ts - 7.0).abs() < 1e-9, "ts = {}", fit.ts);
        assert!((fit.tw - 3.0).abs() < 1e-12, "tw = {}", fit.tw);
        // Draining empties the window.
        assert!(clock.take_window().is_empty());
        // Throttled fabrics never record.
        let clock = LinkClock::new(FabricModel::Throttled(base), 0, 2);
        clock.on_send(0, 10);
        assert!(clock.take_window().is_empty());
    }

    #[test]
    fn epoch_advances_with_barriers_and_switches_the_scenario() {
        // An edge scheduled to die at epoch 1 accepts sends at epoch 0,
        // then rejects them after one barrier.
        let spec = ScenarioSpec {
            deaths: vec![LinkDeath { node: 0, dim: 0, epoch: 1 }],
            ..ScenarioSpec::clean(5, Machine::all_port(1.0, 1.0))
        };
        let sc = Arc::new(Scenario::new(2, spec).expect("one death on a 2-cube"));
        let clock = LinkClock::new(FabricModel::Degraded(sc), 0, 2);
        assert_eq!(clock.epoch(), 0);
        clock.on_send(0, 5); // alive at epoch 0
        let shared = SharedClock::new();
        let slot = clock.begin_barrier(&shared).expect("degraded fabrics are throttled");
        clock.finish_barrier(&shared, slot);
        assert_eq!(clock.epoch(), 1);
        clock.on_send(1, 5); // the *other* edge stays alive
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clock.on_send(0, 5);
        }));
        assert!(died.is_err(), "sending across a dead edge must be a protocol error");
    }

    #[test]
    fn measured_channel_stats_calibrate_to_a_finite_machine() {
        // Tiny probe (d = 1, small sizes): the fit must come back finite
        // and positive whatever this box's scheduler does.
        let stats = measure_channel_fabric(1, &[64, 1024], 5);
        assert_eq!(stats.len(), 2 * 2 * 5, "2 nodes × 2 sizes × 5 reps");
        let m = Machine::calibrate(&stats).expect("two distinct probe sizes fit");
        assert!(m.ts.is_finite() && m.ts > 0.0);
        assert!(m.tw.is_finite() && m.tw > 0.0);
    }
}
