//! Deterministic virtual-clock tracing: typed events recorded per node.
//!
//! Every layer of the stack already *computes* on the fabric's
//! deterministic virtual clock — link transmissions, barrier epochs,
//! sweep boundaries, admission decisions. This module records those
//! moments as typed [`TraceEvent`]s behind a [`TraceSink`] so they can be
//! exported (Chrome trace JSON, utilization matrices — see the
//! `mph-trace` crate) without changing a single bit of the run:
//!
//! * events are stamped on the **virtual clock**, never the wall clock,
//!   so a traced degraded run is a forensic artifact: replaying the same
//!   seed replays the identical event stream, byte for byte;
//! * recording is strictly **observational** — sinks receive copies of
//!   values the runtime computed anyway, so traced runs are
//!   bitwise-identical to untraced runs (proptested at the workspace
//!   root);
//! * each node records into its **own lane** ([`RingSink`]), in program
//!   order. Cross-node interleaving is reconstructed from the virtual
//!   stamps at export time, not from racy append order — that is what
//!   keeps the recorded stream scheduling-independent.
//!
//! The default sink is [`NopSink`]: disabled, zero-allocation, and
//! skipped behind a cached boolean ([`SinkHandle::is_enabled`]) so the
//! untraced hot path never constructs an event.

use std::sync::{Arc, Mutex};

/// One recorded moment, stamped on the virtual clock. The recording
/// node is implicit (it is the sink lane the event lands in).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One charged transmission on a throttled/degraded fabric: the link
    /// across `dim` was acquired at `start` and released at `end`
    /// (`end - start` = `S·Tw_eff` wire time). `issued` is when the node
    /// CPU finished the serial `Ts` start-up, `ready` the data-readiness
    /// stamp of a forwarded packet (0 for fresh sends);
    /// `start - max(issued, ready)` is therefore the port/link queueing
    /// wait — the pipeline window stall the port model imposed.
    Send {
        dim: usize,
        elems: u64,
        job: u32,
        /// Packet header when the payload is a framed packet.
        kq: Option<(u32, u32)>,
        control: bool,
        /// Barrier epoch the send was priced at.
        epoch: usize,
        issued: f64,
        ready: f64,
        start: f64,
        end: f64,
    },
    /// A message consumed from the link across `dim`, carrying its
    /// virtual arrival stamp.
    Recv { dim: usize, elems: u64, job: u32, kq: Option<(u32, u32)>, control: bool, stamp: f64 },
    /// A barrier passed: the node entered `epoch` at the synchronized
    /// virtual time.
    Barrier { epoch: usize, time: f64 },
    /// A driver began sweep `sweep` at `time`.
    SweepBegin { sweep: usize, time: f64 },
    /// A driver finished sweep `sweep` at `time`.
    SweepEnd { sweep: usize, time: f64 },
    /// An adaptive driver adopted a newly agreed machine before `sweep`.
    Recalibrate { sweep: usize, ts: f64, tw: f64, time: f64 },
    /// A message this node originated was relayed around the dead link
    /// across `dim` instead of crossing it directly.
    Relay { dim: usize, elems: u64, time: f64 },
    /// The service admitted `job` at a sweep boundary (`queue_depth` =
    /// queue occupancy after the admission). Emitted by node 0 only —
    /// the admission trace is barrier-synced state, identical on every
    /// node, so one lane is the record.
    Admit { job: u32, time: f64, queue_depth: usize },
    /// The service shed `job`: the bounded queue was full on arrival.
    /// Node 0 only, like [`TraceEvent::Admit`].
    Reject { job: u32, time: f64, queue_depth: usize },
    /// The service de-phased `job` by `slots` skipped micro-ops this
    /// round (same-stagger-key contention). Node 0 only.
    Stagger { job: u32, slots: usize, time: f64 },
}

impl TraceEvent {
    /// The queueing wait a [`TraceEvent::Send`] suffered before its wire
    /// time: `start - max(issued, ready)`. 0 for every other variant.
    pub fn port_wait(&self) -> f64 {
        match self {
            TraceEvent::Send { issued, ready, start, .. } => (start - issued.max(*ready)).max(0.0),
            _ => 0.0,
        }
    }
}

/// Where trace events go. Implementations must be cheap and must never
/// observe or mutate run state: tracing is read-only by contract (the
/// workspace proptests hold traced runs bitwise-equal to untraced ones).
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants events at all. `false` lets the runtime
    /// skip event construction entirely (the [`NopSink`] fast path).
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event from `node`'s program order.
    fn record(&self, node: usize, event: TraceEvent);
}

/// The default sink: disabled, records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _node: usize, _event: TraceEvent) {}
}

/// One node's bounded recording lane: a ring that overwrites the oldest
/// event once `cap` is reached, counting everything it ever saw.
struct Lane {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events recorded in total, including overwritten ones.
    total: u64,
}

/// A bounded in-memory recorder: one lane per node, each a ring of at
/// most `cap` events in program order. Per-node lanes are the
/// determinism trick — a single shared buffer would interleave nodes in
/// OS-scheduler order, while per-node program order is a pure function
/// of the program and the seed.
pub struct RingSink {
    cap: usize,
    lanes: Vec<Mutex<Lane>>,
}

impl RingSink {
    /// A recorder for a `d`-cube keeping at most `cap` events per node.
    pub fn new(d: usize, cap: usize) -> Self {
        assert!(cap > 0, "a zero-capacity ring records nothing");
        RingSink {
            cap,
            lanes: (0..1usize << d)
                .map(|_| Mutex::new(Lane { buf: Vec::new(), head: 0, total: 0 }))
                .collect(),
        }
    }

    /// Events currently held across all lanes (≤ `nodes · cap`).
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| lock(l).buf.len()).sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| lock(l).buf.is_empty())
    }

    /// Events recorded in total, including any the ring overwrote.
    pub fn total_recorded(&self) -> u64 {
        self.lanes.iter().map(|l| lock(l).total).sum()
    }

    /// Drains every lane, oldest event first, returning `lanes[node]` in
    /// node order — the deterministic stream the exporters consume.
    pub fn drain(&self) -> Vec<Vec<TraceEvent>> {
        self.lanes
            .iter()
            .map(|l| {
                let mut lane = lock(l);
                let head = lane.head;
                let mut buf = std::mem::take(&mut lane.buf);
                lane.head = 0;
                buf.rotate_left(head);
                buf
            })
            .collect()
    }
}

fn lock(l: &Mutex<Lane>) -> std::sync::MutexGuard<'_, Lane> {
    // Lane state is plain recorded data, valid after any panic; recover
    // rather than cascade (same contract as the clock locks).
    l.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl TraceSink for RingSink {
    fn record(&self, node: usize, event: TraceEvent) {
        let Some(l) = self.lanes.get(node) else { return };
        let mut lane = lock(l);
        lane.total += 1;
        if lane.buf.len() < self.cap {
            lane.buf.push(event);
        } else {
            let head = lane.head;
            lane.buf[head] = event;
            lane.head = (head + 1) % self.cap;
        }
    }
}

/// A cloneable handle to a [`TraceSink`], carried by the option structs
/// (`JacobiOptions`, `BatchOptions`, `ServeOptions`) and threaded through
/// the runtime. The enabled flag is cached at construction so the
/// disabled fast path is one branch, no virtual call.
#[derive(Clone)]
pub struct SinkHandle {
    sink: Arc<dyn TraceSink>,
    enabled: bool,
}

impl SinkHandle {
    /// The default handle: a [`NopSink`] — tracing off.
    pub fn nop() -> Self {
        SinkHandle { sink: Arc::new(NopSink), enabled: false }
    }

    /// Wraps a live sink. The sink's [`TraceSink::enabled`] is sampled
    /// once, here.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        let enabled = sink.enabled();
        SinkHandle { sink, enabled }
    }

    /// Whether events should be constructed and recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records the event built by `f` for `node`, constructing it only
    /// when the sink is enabled.
    pub fn emit(&self, node: usize, f: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.sink.record(node, f());
        }
    }
}

impl Default for SinkHandle {
    fn default() -> Self {
        SinkHandle::nop()
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.enabled { "SinkHandle(enabled)" } else { "SinkHandle(nop)" })
    }
}

/// Two handles are equal when they are the *same* sink, or both
/// disabled — so option structs carrying the default nop handle keep
/// their `PartialEq` semantics (`Options::default() == Options::default()`).
impl PartialEq for SinkHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.sink, &other.sink) || (!self.enabled && !other.enabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64) -> TraceEvent {
        TraceEvent::Barrier { epoch: 0, time }
    }

    #[test]
    fn nop_handle_is_disabled_and_never_constructs() {
        let h = SinkHandle::nop();
        assert!(!h.is_enabled());
        h.emit(0, || panic!("a disabled handle must not construct events"));
        assert_eq!(format!("{h:?}"), "SinkHandle(nop)");
    }

    #[test]
    fn handles_compare_by_identity_or_both_nop() {
        let a = SinkHandle::nop();
        let b = SinkHandle::nop();
        assert_eq!(a, b, "two independent nops are equal");
        assert_eq!(a, a.clone());
        let ring = Arc::new(RingSink::new(1, 8));
        let live = SinkHandle::new(ring.clone());
        assert_eq!(live, live.clone(), "clones share the sink");
        assert_ne!(live, a, "a live handle differs from a nop");
        assert_eq!(live, SinkHandle::new(ring), "handles over one sink allocation are equal");
        assert_ne!(
            live,
            SinkHandle::new(Arc::new(RingSink::new(1, 8))),
            "handles over distinct live sinks differ"
        );
    }

    #[test]
    fn ring_records_per_node_in_program_order() {
        let ring = RingSink::new(1, 8);
        assert!(ring.is_empty());
        ring.record(0, ev(1.0));
        ring.record(1, ev(2.0));
        ring.record(0, ev(3.0));
        assert_eq!(ring.len(), 3);
        let lanes = ring.drain();
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0], vec![ev(1.0), ev(3.0)]);
        assert_eq!(lanes[1], vec![ev(2.0)]);
        assert!(ring.is_empty(), "drain empties the lanes");
        assert_eq!(ring.total_recorded(), 3);
    }

    #[test]
    fn ring_caps_each_lane_by_overwriting_the_oldest() {
        let ring = RingSink::new(0, 3);
        for i in 0..5 {
            ring.record(0, ev(i as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        let lanes = ring.drain();
        assert_eq!(lanes[0], vec![ev(2.0), ev(3.0), ev(4.0)], "oldest first, oldest dropped");
    }

    #[test]
    fn out_of_range_nodes_are_ignored_not_panicked() {
        let ring = RingSink::new(0, 4);
        ring.record(7, ev(0.0));
        assert!(ring.is_empty());
    }

    #[test]
    fn port_wait_splits_queue_from_wire() {
        let send = TraceEvent::Send {
            dim: 0,
            elems: 10,
            job: 0,
            kq: None,
            control: false,
            epoch: 0,
            issued: 5.0,
            ready: 7.0,
            start: 9.0,
            end: 19.0,
        };
        assert_eq!(send.port_wait(), 2.0, "waited from max(issued, ready)=7 to start=9");
        assert_eq!(ev(0.0).port_wait(), 0.0);
    }
}
