//! Job demultiplexing: several independent problems sharing one set of
//! FIFO links.
//!
//! The batch scheduler interleaves the communication of `N` independent
//! jobs over a single channel fabric so that one job's packets fill the
//! link idle time (pipeline bubbles, serial tails) another leaves behind.
//! The links themselves stay plain FIFO channels; what makes the
//! multiplexing sound is that *every* message declares its job via
//! [`Meterable::job`] (the batch drivers' block/packet/vote frames all
//! carry the tag), and each node routes arrivals through a [`JobMux`]:
//!
//! * [`JobMux::recv_for`] returns the next message *of the requested job*
//!   from a dimension, pulling from the channel and stashing any other
//!   job's messages it passes over — so per-`(dimension, job)` FIFO order
//!   is preserved exactly even when the nodes' interleaving schedules
//!   drift apart in real time;
//! * arrival stamps travel with the stashed messages
//!   ([`NodeCtx::recv_stamped`] semantics), so a stashed packet charges
//!   the virtual clock when *its* job consumes it, not when it happened to
//!   be pulled off the wire. Waiting for another job's data never bills
//!   this job's clock.
//!
//! Link arbitration on the virtual clock needs no extra machinery: the
//! fabric's [`LinkClock`](crate::fabric) grants ports and links to
//! transmissions in the order the node issues them, so the scheduler's
//! interleaving order *is* the arbitration order — first issued, first on
//! the wire, deterministically.

use crate::spmd::{Meterable, NodeCtx};
use std::collections::VecDeque;

/// A job-demultiplexing view of one node's links. See the module docs.
pub struct JobMux<'c, 'n, M: Send + Meterable> {
    ctx: &'c NodeCtx<'n, M>,
    /// `stash[dim]`: arrivals pulled past while looking for another job,
    /// in arrival order, with their virtual-time stamps.
    stash: Vec<VecDeque<(M, f64)>>,
}

impl<'c, 'n, M: Send + Meterable> JobMux<'c, 'n, M> {
    /// A demultiplexer over `ctx`'s links.
    pub fn new(ctx: &'c NodeCtx<'n, M>) -> Self {
        let d = ctx.dim().max(1);
        JobMux { ctx, stash: (0..d).map(|_| VecDeque::new()).collect() }
    }

    /// The wrapped node context.
    pub fn ctx(&self) -> &'c NodeCtx<'n, M> {
        self.ctx
    }

    /// Receives the next message of `job` from the neighbor across `dim`,
    /// together with its virtual arrival stamp. Messages of other jobs
    /// encountered on the way are stashed for their own `recv_for` calls.
    /// The node's clock is *not* advanced — the caller owns the dependency
    /// bookkeeping, exactly as with [`NodeCtx::recv_stamped`].
    pub fn recv_for(&mut self, dim: usize, job: u32) -> (M, f64) {
        if let Some(pos) = self.stash[dim].iter().position(|(m, _)| m.job() == job) {
            return self.stash[dim].remove(pos).expect("position just found");
        }
        loop {
            let (msg, stamp) = self.ctx.recv_stamped(dim);
            if msg.job() == job {
                return (msg, stamp);
            }
            self.stash[dim].push_back((msg, stamp));
        }
    }

    /// Messages currently stashed (all dimensions). A clean batch run ends
    /// with 0 — anything left over means a job sent more than its partners
    /// consumed, i.e. the framing is corrupt.
    pub fn stashed(&self) -> usize {
        self.stash.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricModel;
    use crate::spmd::run_spmd_fabric_jobs;

    /// A two-job wire protocol: every message is one tagged f64.
    #[derive(Debug, Clone, PartialEq)]
    struct Tagged {
        job: u32,
        v: f64,
    }

    impl Meterable for Tagged {
        fn elems(&self) -> u64 {
            1
        }

        fn job(&self) -> u32 {
            self.job
        }
    }

    #[test]
    fn demux_restores_per_job_fifo_order_across_interleavings() {
        // Sender order on dim 0: job1, job0, job1, job0. The receiver asks
        // job 0 first: the mux must stash job 1's messages and hand each
        // job its own messages in send order.
        let (results, meter, _) =
            run_spmd_fabric_jobs::<Tagged, Vec<(u32, f64)>, _>(1, FabricModel::Free, 2, |ctx| {
                let base = ctx.id() as f64 * 10.0;
                for (job, v) in [(1u32, 0.0), (0, 1.0), (1, 2.0), (0, 3.0)] {
                    ctx.send(0, Tagged { job, v: base + v });
                }
                let mut mux = JobMux::new(ctx);
                let mut got = Vec::new();
                for job in [0u32, 0, 1, 1] {
                    let (m, _) = mux.recv_for(0, job);
                    got.push((m.job, m.v));
                }
                assert_eq!(mux.stashed(), 0, "clean runs drain the stash");
                got
            });
        // Two messages per job per node, one element each, metered apart.
        assert_eq!(meter.job_messages(0), 4);
        assert_eq!(meter.job_messages(1), 4);
        assert_eq!(meter.job_volume(0), 4);
        let peer = |n: usize| ((n ^ 1) as f64) * 10.0;
        for (n, got) in results.iter().enumerate() {
            let b = peer(n);
            assert_eq!(got, &vec![(0, b + 1.0), (0, b + 3.0), (1, b + 0.0), (1, b + 2.0)]);
        }
    }

    #[test]
    fn stamps_travel_with_stashed_messages() {
        use crate::machine::Machine;
        // Throttled fabric: job 1's message is sent first (earlier stamp),
        // job 0's second. Receiving job 0 first must not lose or reorder
        // job 1's stamp.
        let fabric = FabricModel::Throttled(Machine::all_port(10.0, 1.0));
        let (results, _, _) = run_spmd_fabric_jobs::<Tagged, (f64, f64), _>(1, fabric, 2, |ctx| {
            ctx.send(0, Tagged { job: 1, v: 1.0 }); // stamp 10 + 1 = 11
            ctx.send(0, Tagged { job: 0, v: 0.0 }); // stamp 20 + 1 = 21
            let mut mux = JobMux::new(ctx);
            let (_, s0) = mux.recv_for(0, 0);
            let (_, s1) = mux.recv_for(0, 1);
            (s0, s1)
        });
        for (s0, s1) in results {
            assert_eq!(s1, 11.0, "job 1's stamp is its own send time");
            assert_eq!(s0, 21.0);
        }
    }
}
