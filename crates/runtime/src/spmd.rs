//! SPMD execution: one OS thread per hypercube node, one channel per link
//! direction.
//!
//! [`run_spmd`] spawns `2^d` threads, each handed a [`NodeCtx`] that can
//! exchange messages with its `d` neighbors and synchronize at barriers.
//! Channels are unbounded, so the symmetric send-then-receive pattern of
//! the Jacobi transitions cannot deadlock. All communication is
//! neighbor-to-neighbor — exactly the discipline the paper's algorithms
//! obey on a real hypercube multicomputer — which is what makes this
//! runtime a faithful stand-in for an MPI-on-hypercube deployment.

use crate::meter::TrafficMeter;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Barrier;

/// The number of elements a message contributes to traffic accounting,
/// and which accounting plane it belongs to.
pub trait Meterable {
    /// Data volume in elements (used only for metering; default 0).
    fn elems(&self) -> u64 {
        0
    }

    /// Whether this is a *control-plane* message (convergence votes,
    /// protocol bookkeeping) rather than block data. Control messages are
    /// metered separately so they never pollute the data-plane totals the
    /// paper's tables count. Default: data plane.
    fn is_control(&self) -> bool {
        false
    }
}

impl Meterable for () {}
impl Meterable for u64 {
    fn elems(&self) -> u64 {
        1
    }
}
impl Meterable for f64 {
    fn elems(&self) -> u64 {
        1
    }
}
impl Meterable for Vec<f64> {
    fn elems(&self) -> u64 {
        self.len() as u64
    }
}

/// Per-node handle: identity, neighbor channels, barrier, traffic meter.
pub struct NodeCtx<'a, M: Send> {
    id: usize,
    d: usize,
    /// `tx[dim]` sends to the neighbor across `dim`.
    tx: Vec<Sender<M>>,
    /// `rx[dim]` receives from the neighbor across `dim`.
    rx: Vec<Receiver<M>>,
    barrier: &'a Barrier,
    meter: &'a TrafficMeter,
}

impl<'a, M: Send + Meterable> NodeCtx<'a, M> {
    /// This node's label (`0..2^d`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Cube dimension `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The neighbor across `dim`.
    pub fn neighbor(&self, dim: usize) -> usize {
        self.id ^ (1 << dim)
    }

    /// Sends `msg` to the neighbor across `dim` (non-blocking).
    pub fn send(&self, dim: usize, msg: M) {
        self.meter.record(dim, msg.elems(), msg.is_control());
        self.tx[dim].send(msg).expect("neighbor hung up");
    }

    /// Receives the next message from the neighbor across `dim` (blocking).
    pub fn recv(&self, dim: usize) -> M {
        self.rx[dim].recv().expect("neighbor hung up")
    }

    /// Symmetric exchange: send `msg` across `dim` and receive the
    /// neighbor's counterpart — the primitive behind every transition.
    pub fn exchange(&self, dim: usize, msg: M) -> M {
        self.send(dim, msg);
        self.recv(dim)
    }

    /// Waits until all `2^d` nodes reach the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// All-reduce by recursive dimension exchange over *any* message type:
    /// every node ends with `fold` applied over all `2^d` contributions, in
    /// `d` neighbor exchanges — the classical hypercube collective.
    ///
    /// `wrap` lifts the reduced value into the link's message type and
    /// `unwrap` extracts it from a received message, so a program whose
    /// links carry a mixed protocol (e.g. blocks *and* convergence scalars)
    /// can vote without a second channel fabric:
    ///
    /// ```ignore
    /// let max = ctx.allreduce_with(local, |&v| Msg::Scalar(v), expect_scalar, f64::max);
    /// ```
    pub fn allreduce_with<T>(
        &self,
        mut value: T,
        wrap: impl Fn(&T) -> M,
        unwrap: impl Fn(M) -> T,
        fold: impl Fn(T, T) -> T,
    ) -> T {
        for dim in 0..self.d {
            let other = unwrap(self.exchange(dim, wrap(&value)));
            value = fold(value, other);
        }
        value
    }
}

impl<'a> NodeCtx<'a, f64> {
    /// [`NodeCtx::allreduce_with`] for links that carry bare `f64`s.
    pub fn allreduce(&self, value: f64, fold: impl Fn(f64, f64) -> f64) -> f64 {
        self.allreduce_with(value, |&v| v, |m| m, fold)
    }
}

/// Runs `body` on every node of a `d`-cube, one thread each, and returns
/// the per-node results in label order.
///
/// `M` is the message type carried by the links; `body` receives the node's
/// [`NodeCtx`]. Panics in any node propagate (the whole computation aborts).
pub fn run_spmd<M, R, F>(d: usize, body: F) -> Vec<R>
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    run_spmd_metered(d, body).0
}

/// Like [`run_spmd`] but also returns the traffic meter.
pub fn run_spmd_metered<M, R, F>(d: usize, body: F) -> (Vec<R>, TrafficMeter)
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    let p = 1usize << d;
    let meter = TrafficMeter::new(d);
    let barrier = Barrier::new(p);

    // chan[n][dim] = (sender towards n, receiver at n).
    let mut senders: Vec<Vec<Option<Sender<M>>>> = (0..p).map(|_| vec![None; d]).collect();
    let mut receivers: Vec<Vec<Option<Receiver<M>>>> = (0..p).map(|_| vec![None; d]).collect();
    for n in 0..p {
        for dim in 0..d {
            // One directed channel delivering to n across dim; its sender
            // belongs to n's neighbor. (n, dim) ↦ (n ^ 2^dim, dim) is a
            // bijection, so every slot is filled exactly once.
            let (tx, rx) = unbounded::<M>();
            senders[n ^ (1 << dim)][dim] = Some(tx);
            receivers[n][dim] = Some(rx);
        }
    }
    let mut ctxs: Vec<NodeCtx<'_, M>> = Vec::with_capacity(p);
    let sender_lists: Vec<Vec<Sender<M>>> = senders
        .into_iter()
        .map(|row| row.into_iter().map(|s| s.expect("sender wired")).collect())
        .collect();
    let receiver_lists: Vec<Vec<Receiver<M>>> = receivers
        .into_iter()
        .map(|row| row.into_iter().map(|r| r.expect("receiver wired")).collect())
        .collect();
    for (n, (tx, rx)) in sender_lists.into_iter().zip(receiver_lists).enumerate() {
        ctxs.push(NodeCtx { id: n, d, tx, rx, barrier: &barrier, meter: &meter });
    }

    let body = &body;
    let results: Vec<R> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ctxs.iter().map(|ctx| scope.spawn(move |_| body(ctx))).collect();
        handles.into_iter().map(|h| h.join().expect("node thread panicked")).collect()
    })
    .expect("spmd scope failed");
    (results, meter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_identify_each_other() {
        let results = run_spmd::<u64, Vec<u64>, _>(3, |ctx| {
            (0..3).map(|dim| ctx.exchange(dim, ctx.id() as u64)).collect()
        });
        for (n, got) in results.iter().enumerate() {
            for dim in 0..3 {
                assert_eq!(got[dim], (n ^ (1 << dim)) as u64);
            }
        }
    }

    #[test]
    fn allreduce_sum_over_cube() {
        for d in 0..=4 {
            let results =
                run_spmd::<f64, f64, _>(d, |ctx| ctx.allreduce(ctx.id() as f64, |a, b| a + b));
            let expect = ((1usize << d) * ((1usize << d) - 1) / 2) as f64;
            for r in results {
                assert_eq!(r, expect);
            }
        }
    }

    #[test]
    fn allreduce_with_lifts_into_an_enum_message_type() {
        // A mixed protocol: links carry an enum, the vote is a scalar.
        #[derive(Clone)]
        enum Wire {
            Num(u64),
        }
        impl Meterable for Wire {
            fn elems(&self) -> u64 {
                1
            }
        }
        let results = run_spmd::<Wire, u64, _>(3, |ctx| {
            ctx.allreduce_with(ctx.id() as u64, |&v| Wire::Num(v), |Wire::Num(v)| v, std::cmp::max)
        });
        for r in results {
            assert_eq!(r, 7);
        }
    }

    #[test]
    fn allreduce_max_over_cube() {
        let results = run_spmd::<f64, f64, _>(3, |ctx| {
            let v = (ctx.id() as f64 * 7.0) % 5.0;
            ctx.allreduce(v, f64::max)
        });
        let expect = (0..8).map(|n| (n as f64 * 7.0) % 5.0).fold(0.0f64, f64::max);
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn meter_counts_volume() {
        let (_, meter) = run_spmd_metered::<Vec<f64>, (), _>(2, |ctx| {
            let _ = ctx.exchange(0, vec![0.0; 10]);
            let _ = ctx.exchange(1, vec![0.0; 3]);
        });
        assert_eq!(meter.messages(0), 4);
        assert_eq!(meter.volume(0), 40);
        assert_eq!(meter.volume(1), 12);
    }

    #[test]
    fn barrier_separates_rounds() {
        // Without the barrier a fast node could lap a slow one; the
        // per-dimension FIFO still keeps exchanges paired, so this test
        // checks the barrier API plus two sequential exchange rounds.
        let results = run_spmd::<u64, (u64, u64), _>(2, |ctx| {
            let first = ctx.exchange(0, ctx.id() as u64);
            ctx.barrier();
            let second = ctx.exchange(0, first);
            (first, second)
        });
        for (n, (first, second)) in results.iter().enumerate() {
            assert_eq!(*first, (n ^ 1) as u64);
            assert_eq!(*second, n as u64); // own id comes back
        }
    }

    #[test]
    fn d0_single_node_runs() {
        let results = run_spmd::<(), usize, _>(0, |ctx| ctx.id() + 100);
        assert_eq!(results, vec![100]);
    }
}
