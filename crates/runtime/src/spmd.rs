//! SPMD execution: one OS thread per hypercube node, one channel per link
//! direction.
//!
//! [`run_spmd`] spawns `2^d` threads, each handed a [`NodeCtx`] that can
//! exchange messages with its `d` neighbors and synchronize at barriers.
//! Channels are unbounded, so the symmetric send-then-receive pattern of
//! the Jacobi transitions cannot deadlock. All communication is
//! neighbor-to-neighbor — exactly the discipline the paper's algorithms
//! obey on a real hypercube multicomputer — which is what makes this
//! runtime a faithful stand-in for an MPI-on-hypercube deployment.
//!
//! Every message travels in an envelope carrying a virtual-time arrival
//! stamp from the sender's [`LinkClock`]. Under the default
//! [`FabricModel::Free`] the stamps are zero and the clocks idle; under
//! [`FabricModel::Throttled`] ([`run_spmd_fabric`]) each send is charged
//! `Ts + S·Tw` against the machine's port configuration, and barriers
//! synchronize the nodes' clocks — see [`crate::fabric`].

use crate::fabric::{FabricModel, FabricReport, LinkClock, SendMeta, SharedClock};
use crate::meter::TrafficMeter;
use crate::trace::{SinkHandle, TraceEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Barrier;

/// The number of elements a message contributes to traffic accounting,
/// and which accounting plane it belongs to.
pub trait Meterable {
    /// Data volume in elements (used only for metering; default 0).
    fn elems(&self) -> u64 {
        0
    }

    /// Whether this is a *control-plane* message (convergence votes,
    /// protocol bookkeeping) rather than block data. Control messages are
    /// metered separately so they never pollute the data-plane totals the
    /// paper's tables count. Default: data plane.
    fn is_control(&self) -> bool {
        false
    }

    /// Which batch job this message belongs to, when several independent
    /// problems share one fabric (see
    /// [`run_spmd_fabric_jobs`](crate::spmd::run_spmd_fabric_jobs)). The
    /// meter keeps per-job totals and the job demultiplexer
    /// ([`crate::jobmux::JobMux`]) routes by this tag. Solo programs use
    /// the default job 0.
    fn job(&self) -> u32 {
        0
    }

    /// The `(k, q)` pipeline header, when this message is a framed packet
    /// of a pipelined phase (see [`crate::packet::Packet`]). Used only by
    /// tracing, so link spans carry the packet identity the paper's
    /// wavefront diagrams index by. Default: not a packet.
    fn kq(&self) -> Option<(u32, u32)> {
        None
    }
}

impl Meterable for () {}
impl Meterable for u64 {
    fn elems(&self) -> u64 {
        1
    }
}
impl Meterable for f64 {
    fn elems(&self) -> u64 {
        1
    }
}
impl Meterable for Vec<f64> {
    fn elems(&self) -> u64 {
        self.len() as u64
    }
}

/// A message plus its virtual-time arrival stamp (0 on a free fabric).
struct Envelope<M> {
    msg: M,
    stamp: f64,
}

/// Per-node handle: identity, neighbor channels, barrier, traffic meter,
/// and the node's fabric clock.
pub struct NodeCtx<'a, M: Send> {
    id: usize,
    d: usize,
    /// `tx[dim]` sends to the neighbor across `dim`.
    tx: Vec<Sender<Envelope<M>>>,
    /// `rx[dim]` receives from the neighbor across `dim`.
    rx: Vec<Receiver<Envelope<M>>>,
    barrier: &'a Barrier,
    meter: &'a TrafficMeter,
    clock: LinkClock,
    shared_clock: &'a SharedClock,
}

impl<'a, M: Send + Meterable> NodeCtx<'a, M> {
    /// This node's label (`0..2^d`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Cube dimension `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The neighbor across `dim`.
    pub fn neighbor(&self, dim: usize) -> usize {
        self.id ^ (1 << dim)
    }

    /// This node's virtual clock, in machine time units (always 0 on a
    /// [`FabricModel::Free`] fabric).
    pub fn virtual_now(&self) -> f64 {
        self.clock.now()
    }

    /// Sends `msg` to the neighbor across `dim` (non-blocking in real
    /// time; on a throttled fabric the message is charged `Ts + S·Tw`
    /// against this node's ports and outgoing link on the virtual clock).
    pub fn send(&self, dim: usize, msg: M) {
        self.send_after(dim, msg, 0.0);
    }

    /// Receives the next message from the neighbor across `dim` (blocking;
    /// on a throttled fabric this node's clock advances to the message's
    /// arrival stamp — waiting for data is virtual time spent).
    pub fn recv(&self, dim: usize) -> M {
        let env = self.rx[dim].recv().expect("neighbor hung up");
        self.clock.on_recv(env.stamp);
        self.trace_recv(dim, &env);
        env.msg
    }

    /// Symmetric exchange: send `msg` across `dim` and receive the
    /// neighbor's counterpart — the primitive behind every transition.
    pub fn exchange(&self, dim: usize, msg: M) -> M {
        self.send(dim, msg);
        self.recv(dim)
    }

    /// Like [`NodeCtx::send`], with an explicit *data-readiness* time:
    /// the transmission departs no earlier than `ready` (typically the
    /// arrival stamp of the packet this message forwards, from
    /// [`NodeCtx::recv_stamped`]). The CPU issues the start-up serially
    /// in program order but does not wait for the data — the
    /// comm-processor model that lets a software pipeline overlap
    /// iterations on the virtual clock.
    pub fn send_after(&self, dim: usize, msg: M, ready: f64) {
        self.meter.record(dim, msg.elems(), msg.is_control(), msg.job());
        let meta = SendMeta {
            elems: msg.elems(),
            job: msg.job(),
            kq: msg.kq(),
            control: msg.is_control(),
        };
        let stamp = self.clock.on_send_meta(dim, ready, &meta);
        self.tx[dim].send(Envelope { msg, stamp }).expect("neighbor hung up");
    }

    /// Like [`NodeCtx::recv`], but returns the message's virtual arrival
    /// stamp *without* advancing this node's clock: the caller owns the
    /// dependency bookkeeping (forward the stamp into
    /// [`NodeCtx::send_after`], and [`NodeCtx::advance_clock_to`] the
    /// stamps it ultimately consumes). On a free fabric the stamp is 0.
    pub fn recv_stamped(&self, dim: usize) -> (M, f64) {
        let env = self.rx[dim].recv().expect("neighbor hung up");
        self.trace_recv(dim, &env);
        (env.msg, env.stamp)
    }

    /// The node's trace sink handle, for drivers that record their own
    /// span boundaries (sweeps, recalibrations, relay hops, admission
    /// decisions) next to the link events the clock records. Disabled
    /// (the default [`crate::trace::NopSink`]) unless the run came in
    /// through [`run_spmd_fabric_jobs_traced`].
    pub fn trace(&self) -> &SinkHandle {
        self.clock.trace()
    }

    /// Records a consumed arrival. Recv events only exist on throttled
    /// fabrics, matching the send spans (a free fabric has no virtual
    /// clock to stamp them on).
    fn trace_recv(&self, dim: usize, env: &Envelope<M>) {
        let sink = self.clock.trace();
        if sink.is_enabled() && self.clock.throttled() {
            sink.emit(self.id, || TraceEvent::Recv {
                dim,
                elems: env.msg.elems(),
                job: env.msg.job(),
                kq: env.msg.kq(),
                control: env.msg.is_control(),
                stamp: env.stamp,
            });
        }
    }

    /// Advances this node's virtual clock to `t` (no-op if already past,
    /// or on a free fabric): the moment a stamped arrival is consumed.
    pub fn advance_clock_to(&self, t: f64) {
        self.clock.on_recv(t);
    }

    /// The clock's current epoch (barriers passed so far) — the index a
    /// [`FabricModel::Degraded`] scenario is evaluated at. Nodes that have
    /// passed the same barriers agree on it deterministically.
    pub fn fabric_epoch(&self) -> usize {
        self.clock.epoch()
    }

    /// Drains this node's live send-cost window (degraded fabrics only;
    /// always empty otherwise): `(elems, service time)` samples an
    /// adaptive driver feeds to `Machine::calibrate` mid-run.
    pub fn take_fabric_window(&self) -> crate::machine::FabricStats {
        self.clock.take_window()
    }

    /// Waits until all `2^d` nodes reach the barrier. On a throttled
    /// fabric the nodes also synchronize their virtual clocks: everyone
    /// leaves at the latest participant's time, as a real barrier would
    /// make them. The sync is two-phase over per-generation slots (fold →
    /// wait → adopt + reset-other → wait), so a fast node can never fold
    /// its *next* barrier's time into a slot a slow node is still
    /// adopting — virtual times stay scheduling-independent.
    pub fn barrier(&self) {
        match self.clock.begin_barrier(self.shared_clock) {
            None => {
                self.barrier.wait();
            }
            Some(slot) => {
                self.barrier.wait();
                self.clock.finish_barrier(self.shared_clock, slot);
                self.barrier.wait();
            }
        }
    }

    /// All-reduce by recursive dimension exchange over *any* message type:
    /// every node ends with `fold` applied over all `2^d` contributions, in
    /// `d` neighbor exchanges — the classical hypercube collective.
    ///
    /// `wrap` lifts the reduced value into the link's message type and
    /// `unwrap` extracts it from a received message, so a program whose
    /// links carry a mixed protocol (e.g. blocks *and* convergence scalars)
    /// can vote without a second channel fabric:
    ///
    /// ```ignore
    /// let max = ctx.allreduce_with(local, |&v| Msg::Scalar(v), expect_scalar, f64::max);
    /// ```
    pub fn allreduce_with<T>(
        &self,
        mut value: T,
        wrap: impl Fn(&T) -> M,
        unwrap: impl Fn(M) -> T,
        fold: impl Fn(T, T) -> T,
    ) -> T {
        for dim in 0..self.d {
            let other = unwrap(self.exchange(dim, wrap(&value)));
            value = fold(value, other);
        }
        value
    }
}

impl<'a> NodeCtx<'a, f64> {
    /// [`NodeCtx::allreduce_with`] for links that carry bare `f64`s.
    pub fn allreduce(&self, value: f64, fold: impl Fn(f64, f64) -> f64) -> f64 {
        self.allreduce_with(value, |&v| v, |m| m, fold)
    }
}

/// Runs `body` on every node of a `d`-cube, one thread each, and returns
/// the per-node results in label order.
///
/// `M` is the message type carried by the links; `body` receives the node's
/// [`NodeCtx`]. Panics in any node propagate (the whole computation aborts).
pub fn run_spmd<M, R, F>(d: usize, body: F) -> Vec<R>
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    run_spmd_metered(d, body).0
}

/// Like [`run_spmd`] but also returns the traffic meter.
pub fn run_spmd_metered<M, R, F>(d: usize, body: F) -> (Vec<R>, TrafficMeter)
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    let (results, meter, _) = run_spmd_fabric(d, FabricModel::Free, body);
    (results, meter)
}

/// Like [`run_spmd_metered`] but the links run under `fabric`: with
/// [`FabricModel::Throttled`] every message is charged against the
/// machine's `Ts`/`Tw`/ports on a deterministic virtual clock, and the
/// returned [`FabricReport`] carries the measured virtual makespan.
pub fn run_spmd_fabric<M, R, F>(
    d: usize,
    fabric: FabricModel,
    body: F,
) -> (Vec<R>, TrafficMeter, FabricReport)
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    run_spmd_fabric_jobs(d, fabric, 1, body)
}

/// Like [`run_spmd_fabric`] for a program multiplexing `njobs` independent
/// batch jobs over the links: the traffic meter keeps per-job totals
/// (messages declare their job via [`Meterable::job`]) next to the blended
/// per-dimension ones. `run_spmd_fabric` is this with a single job.
pub fn run_spmd_fabric_jobs<M, R, F>(
    d: usize,
    fabric: FabricModel,
    njobs: usize,
    body: F,
) -> (Vec<R>, TrafficMeter, FabricReport)
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    run_spmd_fabric_jobs_traced(d, fabric, njobs, SinkHandle::nop(), body)
}

/// Like [`run_spmd_fabric_jobs`] with a trace sink: every node's link
/// clock records its transmissions, arrivals, and barrier crossings into
/// `sink` (see [`crate::trace`]), and `body` can record driver-level
/// events through [`NodeCtx::trace`]. Tracing is observational only —
/// results are bitwise-identical to the untraced run, and with the
/// default [`SinkHandle::nop`] this *is* [`run_spmd_fabric_jobs`].
pub fn run_spmd_fabric_jobs_traced<M, R, F>(
    d: usize,
    fabric: FabricModel,
    njobs: usize,
    sink: SinkHandle,
    body: F,
) -> (Vec<R>, TrafficMeter, FabricReport)
where
    M: Send + Meterable,
    R: Send,
    F: Fn(&NodeCtx<'_, M>) -> R + Sync,
{
    // Misconfigured fabrics are rejected by the checked option
    // constructors upstream; this is the last line of defense for callers
    // that skipped them — one clear failure before any thread spawns
    // instead of 2^d asserts racing inside the workers.
    if let Err(err) = fabric.validate() {
        panic!("invalid fabric model: {err}");
    }
    let p = 1usize << d;
    let meter = TrafficMeter::with_jobs(d, njobs);
    let barrier = Barrier::new(p);
    let shared_clock = SharedClock::new();

    // chan[n][dim] = (sender towards n, receiver at n).
    let mut senders: Vec<Vec<Option<Sender<Envelope<M>>>>> =
        (0..p).map(|_| vec![None; d]).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Envelope<M>>>>> =
        (0..p).map(|_| vec![None; d]).collect();
    for n in 0..p {
        for dim in 0..d {
            // One directed channel delivering to n across dim; its sender
            // belongs to n's neighbor. (n, dim) ↦ (n ^ 2^dim, dim) is a
            // bijection, so every slot is filled exactly once.
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders[n ^ (1 << dim)][dim] = Some(tx);
            receivers[n][dim] = Some(rx);
        }
    }
    let mut ctxs: Vec<NodeCtx<'_, M>> = Vec::with_capacity(p);
    let sender_lists: Vec<Vec<Sender<Envelope<M>>>> = senders
        .into_iter()
        .map(|row| row.into_iter().map(|s| s.expect("sender wired")).collect())
        .collect();
    let receiver_lists: Vec<Vec<Receiver<Envelope<M>>>> = receivers
        .into_iter()
        .map(|row| row.into_iter().map(|r| r.expect("receiver wired")).collect())
        .collect();
    for (n, (tx, rx)) in sender_lists.into_iter().zip(receiver_lists).enumerate() {
        ctxs.push(NodeCtx {
            id: n,
            d,
            tx,
            rx,
            barrier: &barrier,
            meter: &meter,
            clock: LinkClock::with_sink(fabric.clone(), n, d, sink.clone()),
            shared_clock: &shared_clock,
        });
    }

    let body = &body;
    let results: Vec<R> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ctxs.iter().map(|ctx| scope.spawn(move |_| body(ctx))).collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise the worker's own panic payload rather than a
                // generic "node thread panicked": with the clock locks
                // recovering from poison, the root cause is the only
                // panic left and it should read that way.
                h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    let node_times: Vec<f64> = ctxs.iter().map(|ctx| ctx.clock.now()).collect();
    let makespan = node_times.iter().fold(0.0f64, |a, &b| a.max(b));
    (results, meter, FabricReport { model: fabric, makespan, node_times })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn neighbors_identify_each_other() {
        let results = run_spmd::<u64, Vec<u64>, _>(3, |ctx| {
            (0..3).map(|dim| ctx.exchange(dim, ctx.id() as u64)).collect()
        });
        for (n, got) in results.iter().enumerate() {
            for dim in 0..3 {
                assert_eq!(got[dim], (n ^ (1 << dim)) as u64);
            }
        }
    }

    #[test]
    fn allreduce_sum_over_cube() {
        for d in 0..=4 {
            let results =
                run_spmd::<f64, f64, _>(d, |ctx| ctx.allreduce(ctx.id() as f64, |a, b| a + b));
            let expect = ((1usize << d) * ((1usize << d) - 1) / 2) as f64;
            for r in results {
                assert_eq!(r, expect);
            }
        }
    }

    #[test]
    fn allreduce_with_lifts_into_an_enum_message_type() {
        // A mixed protocol: links carry an enum, the vote is a scalar.
        #[derive(Clone)]
        enum Wire {
            Num(u64),
        }
        impl Meterable for Wire {
            fn elems(&self) -> u64 {
                1
            }
        }
        let results = run_spmd::<Wire, u64, _>(3, |ctx| {
            ctx.allreduce_with(ctx.id() as u64, |&v| Wire::Num(v), |Wire::Num(v)| v, std::cmp::max)
        });
        for r in results {
            assert_eq!(r, 7);
        }
    }

    #[test]
    fn allreduce_max_over_cube() {
        let results = run_spmd::<f64, f64, _>(3, |ctx| {
            let v = (ctx.id() as f64 * 7.0) % 5.0;
            ctx.allreduce(v, f64::max)
        });
        let expect = (0..8).map(|n| (n as f64 * 7.0) % 5.0).fold(0.0f64, f64::max);
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn meter_counts_volume() {
        let (_, meter) = run_spmd_metered::<Vec<f64>, (), _>(2, |ctx| {
            let _ = ctx.exchange(0, vec![0.0; 10]);
            let _ = ctx.exchange(1, vec![0.0; 3]);
        });
        assert_eq!(meter.messages(0), 4);
        assert_eq!(meter.volume(0), 40);
        assert_eq!(meter.volume(1), 12);
    }

    #[test]
    fn barrier_separates_rounds() {
        // Without the barrier a fast node could lap a slow one; the
        // per-dimension FIFO still keeps exchanges paired, so this test
        // checks the barrier API plus two sequential exchange rounds.
        let results = run_spmd::<u64, (u64, u64), _>(2, |ctx| {
            let first = ctx.exchange(0, ctx.id() as u64);
            ctx.barrier();
            let second = ctx.exchange(0, first);
            (first, second)
        });
        for (n, (first, second)) in results.iter().enumerate() {
            assert_eq!(*first, (n ^ 1) as u64);
            assert_eq!(*second, n as u64); // own id comes back
        }
    }

    #[test]
    fn d0_single_node_runs() {
        let results = run_spmd::<(), usize, _>(0, |ctx| ctx.id() + 100);
        assert_eq!(results, vec![100]);
    }

    #[test]
    fn free_fabric_reports_zero_makespan() {
        let (_, _, report) = run_spmd_fabric::<f64, f64, _>(2, FabricModel::Free, |ctx| {
            ctx.allreduce(1.0, |a, b| a + b)
        });
        assert_eq!(report.model, FabricModel::Free);
        assert_eq!(report.makespan, 0.0);
        assert_eq!(report.node_times, vec![0.0; 4]);
    }

    #[test]
    fn throttled_exchange_costs_ts_plus_s_tw_per_transition() {
        // The canonical symmetric transition: every exchange of an
        // S-element message advances every node's clock by exactly
        // Ts + S·Tw, and the makespan is deterministic.
        let fabric = FabricModel::Throttled(Machine::all_port(10.0, 2.0));
        let run = || {
            let (_, _, report) = run_spmd_fabric::<Vec<f64>, (), _>(2, fabric.clone(), |ctx| {
                for dim in [0usize, 1, 0] {
                    let _ = ctx.exchange(dim, vec![0.0; 5]);
                }
            });
            report
        };
        let report = run();
        let expect = 3.0 * (10.0 + 5.0 * 2.0);
        assert_eq!(report.makespan, expect);
        assert_eq!(report.node_times, vec![expect; 4]);
        assert_eq!(run(), report, "virtual time must not depend on scheduling");
    }

    #[test]
    fn throttled_one_port_serializes_concurrent_sends() {
        // Two sends on distinct links before any receive: all-port
        // overlaps the transmissions, one-port queues them.
        let time_with = |machine: Machine| {
            let (_, _, report) =
                run_spmd_fabric::<Vec<f64>, (), _>(2, FabricModel::Throttled(machine), |ctx| {
                    ctx.send(0, vec![0.0; 100]);
                    ctx.send(1, vec![0.0; 100]);
                    let _ = ctx.recv(0);
                    let _ = ctx.recv(1);
                });
            report.makespan
        };
        let all = time_with(Machine::all_port(1.0, 1.0));
        let one = time_with(Machine::one_port(1.0, 1.0));
        assert_eq!(all, 2.0 + 100.0); // start-ups serial, wires parallel
                                      // One port: the second transmission queues behind the first
                                      // (its start-up overlaps the first transmission).
        assert_eq!(one, 1.0 + 100.0 + 100.0);
    }

    #[test]
    fn repeated_throttled_barriers_resync_deterministically() {
        // The review repro: a fast pair races ahead to its next barrier
        // while a slow pair is still adopting the previous one. With
        // per-generation slots the adopted times are exact and identical
        // across runs regardless of scheduling.
        let fabric = FabricModel::Throttled(Machine::all_port(0.0, 1.0));
        let run = || {
            run_spmd_fabric::<Vec<f64>, Vec<f64>, _>(2, fabric.clone(), |ctx| {
                let mut times = Vec::new();
                // Round 1: pair (0,1) heavy, pair (2,3) light.
                let elems = if ctx.id() < 2 { 1000 } else { 10 };
                let _ = ctx.exchange(0, vec![0.0; elems]);
                ctx.barrier();
                times.push(ctx.virtual_now());
                // Round 2: roles swapped.
                let elems = if ctx.id() < 2 { 10 } else { 1000 };
                let _ = ctx.exchange(0, vec![0.0; elems]);
                ctx.barrier();
                times.push(ctx.virtual_now());
                times
            })
            .0
        };
        let want = vec![vec![1000.0, 2000.0]; 4];
        for i in 0..20 {
            assert_eq!(run(), want, "run {i} diverged");
        }
    }

    #[test]
    fn worker_panics_propagate_their_own_payload() {
        // The root-cause contract behind the poison-recovery fix: when one
        // node fails, the panic that escapes the runtime is *that node's*,
        // not a generic join/poison cascade from its peers.
        let caught = std::panic::catch_unwind(|| {
            run_spmd::<u64, (), _>(2, |ctx| {
                let _ = ctx.exchange(0, ctx.id() as u64);
                if ctx.id() == 3 {
                    panic!("original failure in node 3");
                }
                // Peers keep touching their clocks/channels after the
                // panic; none of that may replace the payload below.
                let _ = ctx.virtual_now();
            });
        });
        let payload = caught.expect_err("the node panic must escape");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("original failure in node 3"),
            "expected the worker's own payload, got: {msg:?}"
        );
    }

    #[test]
    fn degraded_fabric_replays_and_charges_per_link() {
        use crate::scenario::{Scenario, ScenarioSpec};
        use std::sync::Arc;

        // A heterogeneous scenario: per-link machines differ, so the
        // makespan exceeds the clean-base one, and every run replays the
        // same virtual times from the seed.
        let base = Machine::all_port(10.0, 2.0);
        let spec = ScenarioSpec { hetero_spread: 2.0, ..ScenarioSpec::clean(77, base) };
        let sc = Arc::new(Scenario::new(2, spec).expect("valid spec"));
        let run = |fabric: FabricModel| {
            run_spmd_fabric::<Vec<f64>, (), _>(2, fabric, |ctx| {
                for dim in [0usize, 1, 0] {
                    let _ = ctx.exchange(dim, vec![0.0; 5]);
                }
                ctx.barrier();
            })
            .2
        };
        let clean = run(FabricModel::Throttled(base));
        let degraded = run(FabricModel::Degraded(sc.clone()));
        assert!(
            degraded.makespan > clean.makespan,
            "impaired links must cost more: {} vs {}",
            degraded.makespan,
            clean.makespan
        );
        let replay = run(FabricModel::Degraded(sc));
        assert_eq!(replay, degraded, "scenario runs must replay bit for bit");
    }

    #[test]
    fn invalid_fabric_fails_before_spawn_with_the_typed_message() {
        use crate::machine::PortModel;
        let bad = Machine { ts: 1.0, tw: 1.0, ports: PortModel::KPort(0) };
        let caught = std::panic::catch_unwind(|| {
            run_spmd_fabric::<u64, (), _>(1, FabricModel::Throttled(bad), |_| {});
        });
        let payload = caught.expect_err("KPort(0) must be rejected");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("invalid fabric model"), "got: {msg:?}");
    }

    #[test]
    fn throttled_barrier_synchronizes_clocks() {
        // Node pairs across dim 0 exchange unequal payloads; after a
        // barrier every node's clock sits at the slowest participant.
        let fabric = FabricModel::Throttled(Machine::all_port(0.0, 1.0));
        let (_, _, report) = run_spmd_fabric::<Vec<f64>, f64, _>(2, fabric, |ctx| {
            let elems = if ctx.id() < 2 { 10 } else { 1000 };
            let _ = ctx.exchange(0, vec![0.0; elems]);
            ctx.barrier();
            ctx.virtual_now()
        });
        assert_eq!(report.node_times, vec![1000.0; 4]);
    }
}
