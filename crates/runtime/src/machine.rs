//! Machine model: communication parameters of the hypercube multicomputer.
//!
//! The paper's model has two parameters — `Ts`, the start-up time to
//! initiate a communication through one link, and `Tw`, the transmission
//! time per data element — plus the port configuration. In an all-port
//! configuration every node can drive all `d` links simultaneously; in a
//! one-port configuration a node drives one link at a time (paper §2.1,
//! after Ni & McKinley \[14\]).
//!
//! From the paper's kernel-stage cost `e·Ts + α·S·Tw` we adopt the standard
//! interpretation (DESIGN.md §6.2): start-ups are issued serially by the
//! node CPU (one `Ts` per distinct link used in a stage), transmissions then
//! proceed concurrently on as many links as the port model allows, and
//! packets sharing a link coalesce into one message.
//!
//! The model lives in the runtime crate because the runtime both *enforces*
//! it (the throttled link fabric of [`crate::fabric`] charges every message
//! `Ts + S·Tw` against the port configuration) and *measures* it:
//! [`FabricStats`] collects wall-clock transfer samples from the live
//! channel transport, and [`Machine::calibrate`] fits `Ts`/`Tw` to them, so
//! schedulers can optimize for the machine they actually run on instead of
//! the paper's Figure-2 constants. `mph_ccpipe` re-exports everything here,
//! so the analytic cost models and this runtime share one vocabulary.

/// Port configuration of every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortModel {
    /// One message in flight per node at a time: transmissions serialize.
    OnePort,
    /// Up to `k` concurrent transmissions per node.
    KPort(usize),
    /// A transmission per link simultaneously (the paper's target).
    AllPort,
}

/// Communication parameters of the target machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Start-up (per-message initiation) time.
    pub ts: f64,
    /// Per-element transmission time.
    pub tw: f64,
    /// Port configuration.
    pub ports: PortModel,
}

impl Machine {
    /// The paper's Figure-2 machine: `Ts = 1000`, `Tw = 100`, all-port.
    pub fn paper_figure2() -> Self {
        Machine { ts: 1000.0, tw: 100.0, ports: PortModel::AllPort }
    }

    /// An all-port machine with explicit parameters.
    pub fn all_port(ts: f64, tw: f64) -> Self {
        Machine { ts, tw, ports: PortModel::AllPort }
    }

    /// A one-port machine with explicit parameters.
    pub fn one_port(ts: f64, tw: f64) -> Self {
        Machine { ts, tw, ports: PortModel::OnePort }
    }

    /// Cost of one *unpipelined* transition: a single message of
    /// `elems` elements over one link.
    pub fn single_message_cost(&self, elems: f64) -> f64 {
        self.ts + elems * self.tw
    }

    /// Cost of one communication stage in which the node sends, through
    /// each link `l` of `multiplicities`, a combined message of
    /// `multiplicities[l] × packet_elems` elements (zero entries = unused
    /// links).
    ///
    /// * all-port: `n·Ts + max_mult·S·Tw` — start-ups serialize, the
    ///   longest transmission dominates;
    /// * one-port: `n·Ts + total·S·Tw` — everything serializes;
    /// * k-port: start-ups serialize, transmissions are scheduled on `k`
    ///   ports with an LPT (longest-processing-time) list schedule.
    pub fn stage_cost_from_mults(&self, multiplicities: &[usize], packet_elems: f64) -> f64 {
        let mut n = 0usize;
        let mut total = 0usize;
        let mut maxm = 0usize;
        for &m in multiplicities {
            if m > 0 {
                n += 1;
                total += m;
                maxm = maxm.max(m);
            }
        }
        self.stage_cost(n, total, maxm, packet_elems, multiplicities)
    }

    /// Stage cost from precomputed window statistics: `n_distinct` links
    /// used, `total` packets, `max_mult` packets on the busiest link.
    /// `mults` is consulted only by the k-port model (may be empty for
    /// one-port/all-port).
    pub fn stage_cost(
        &self,
        n_distinct: usize,
        total: usize,
        max_mult: usize,
        packet_elems: f64,
        mults: &[usize],
    ) -> f64 {
        if n_distinct == 0 {
            return 0.0;
        }
        let startups = n_distinct as f64 * self.ts;
        let sw = packet_elems * self.tw;
        match self.ports {
            PortModel::AllPort => startups + max_mult as f64 * sw,
            PortModel::OnePort => startups + total as f64 * sw,
            PortModel::KPort(k) => {
                assert!(k >= 1);
                if k == 1 {
                    return startups + total as f64 * sw;
                }
                // LPT schedule of per-link transmission jobs on k ports.
                let mut jobs: Vec<usize> = mults.iter().copied().filter(|&m| m > 0).collect();
                jobs.sort_unstable_by(|a, b| b.cmp(a));
                let mut ports = vec![0usize; k.min(jobs.len()).max(1)];
                for j in jobs {
                    let idx = ports
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &load)| load)
                        .map(|(i, _)| i)
                        .unwrap();
                    ports[idx] += j;
                }
                let makespan = *ports.iter().max().unwrap();
                startups + makespan as f64 * sw
            }
        }
    }

    /// Fits `Ts`/`Tw` to wall-clock transfer samples gathered from a live
    /// transport (see [`crate::fabric::measure_channel_fabric`]): for each
    /// message size the per-sample median is taken (wall clocks on loaded
    /// machines have heavy right tails), then `time = Ts + elems·Tw` is
    /// least-squares fitted across sizes.
    ///
    /// Both parameters come back strictly positive. When the fitted
    /// intercept is not (cache effects make large-size transfer times
    /// convex, which can push the extrapolated zero-size intercept below
    /// zero), `Ts` falls back to **half the smallest size's median
    /// transfer time** — a *measured* magnitude that upper-bounds the
    /// true start-up, rather than a fictitious constant that would make
    /// a start-up-dominated transport look start-up-free to `optimize_q`.
    /// `Tw` keeps a tiny floor (1 fs/element) for the same reason.
    ///
    /// The returned machine is all-port: the channel transport imposes no
    /// port limit of its own. Callers wanting to *model* a port-limited
    /// deployment override `ports` afterwards.
    ///
    /// # Errors
    /// Degenerate inputs return a typed [`CalibrationError`] instead of
    /// the panic-or-fallback mix earlier revisions had: an empty sample
    /// set ([`CalibrationError::Empty`]), any non-finite sample
    /// ([`CalibrationError::NonFiniteSample`]), or fewer than two
    /// distinct message sizes — a slope needs two abscissae — including
    /// the all-identical-samples case ([`CalibrationError::SingleSize`]).
    /// Callers that want the old infallible behavior use
    /// [`Machine::calibrate_or_default`].
    pub fn calibrate(stats: &FabricStats) -> Result<Machine, CalibrationError> {
        if stats.is_empty() {
            return Err(CalibrationError::Empty);
        }
        if stats.samples().iter().any(|&(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(CalibrationError::NonFiniteSample);
        }
        let medians = stats.median_by_size();
        if medians.len() < 2 {
            return Err(CalibrationError::SingleSize {
                distinct: medians.len(),
                samples: stats.len(),
            });
        }
        // Least squares of secs on elems over the per-size medians.
        let n = medians.len() as f64;
        let sx: f64 = medians.iter().map(|&(x, _)| x).sum();
        let sy: f64 = medians.iter().map(|&(_, y)| y).sum();
        let sxx: f64 = medians.iter().map(|&(x, _)| x * x).sum();
        let sxy: f64 = medians.iter().map(|&(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        // A non-positive intercept means the start-up is unresolvable
        // from the fit; fall back to a measured magnitude (see docs).
        let smallest_median = medians[0].1;
        let ts = if intercept > 0.0 { intercept } else { (smallest_median * 0.5).max(1e-12) };
        let tw = slope.max(1e-15);
        Ok(Machine { ts, tw, ports: PortModel::AllPort })
    }

    /// Infallible [`Machine::calibrate`]: degenerate probe data falls back
    /// to the paper's Figure-2 constants ([`Machine::paper_figure2`])
    /// instead of an error — a *modeled* machine, clearly labeled as such
    /// by being exactly the paper's, rather than a half-fitted one. Use
    /// this where a calibration failure should degrade to analytic
    /// pricing, and [`Machine::calibrate`] where it should be surfaced.
    pub fn calibrate_or_default(stats: &FabricStats) -> Machine {
        Machine::calibrate(stats).unwrap_or_else(|_| Machine::paper_figure2())
    }
}

/// Why [`Machine::calibrate`] could not fit the affine cost law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// No samples were recorded at all.
    Empty,
    /// A sample's size or time was NaN or infinite.
    NonFiniteSample,
    /// Fewer than two distinct message sizes (this many, across this
    /// many samples): a slope needs two abscissae. Covers the
    /// all-samples-identical case too.
    SingleSize { distinct: usize, samples: usize },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::Empty => {
                write!(f, "calibration got an empty sample set (0 samples, 0 sizes)")
            }
            CalibrationError::NonFiniteSample => {
                write!(f, "calibration got a non-finite sample")
            }
            CalibrationError::SingleSize { distinct, samples } => write!(
                f,
                "calibration needs samples at >= 2 distinct message sizes, got {distinct} \
                 (all {samples} samples share one size)"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Wall-clock transfer samples gathered from a live transport, the input
/// to [`Machine::calibrate`]. Each sample is one timed message:
/// `(elements, seconds)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FabricStats {
    samples: Vec<(f64, f64)>,
}

impl FabricStats {
    /// An empty sample set.
    pub fn new() -> Self {
        FabricStats::default()
    }

    /// Records one timed transfer of `elems` elements taking `secs`.
    pub fn record(&mut self, elems: f64, secs: f64) {
        self.samples.push((elems, secs));
    }

    /// All samples, in recording order.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Folds another sample set in (e.g. per-node probes into one fit).
    pub fn merge(&mut self, other: &FabricStats) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// `(elems, sample count)` per distinct size, sizes ascending — the
    /// diagnostic behind [`CalibrationError`]'s sample counts: when a fit
    /// fails, this says how the probe mass was actually distributed.
    pub fn counts_by_size(&self) -> Vec<(f64, usize)> {
        let mut sorted: Vec<f64> = self.samples.iter().map(|&(x, _)| x).collect();
        sorted.sort_by(f64::total_cmp);
        let mut out: Vec<(f64, usize)> = Vec::new();
        for x in sorted {
            match out.last_mut() {
                Some((size, n)) if size.total_cmp(&x).is_eq() => *n += 1,
                _ => out.push((x, 1)),
            }
        }
        out
    }

    /// `(elems, median secs)` per distinct size, sizes ascending.
    ///
    /// Total-order sort (`f64::total_cmp`), so non-finite samples — a
    /// jittery link's wall clock can hand back NaN or Inf — never panic
    /// here; [`Machine::calibrate`] rejects them with the typed
    /// [`CalibrationError::NonFiniteSample`] before fitting.
    pub fn median_by_size(&self) -> Vec<(f64, f64)> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            // Group under the same total order as the sort: `==` would
            // never match a NaN size, stalling the scan on its own group.
            let j =
                sorted[i..].iter().take_while(|s| s.0.total_cmp(&sorted[i].0).is_eq()).count() + i;
            out.push((sorted[i].0, sorted[i + (j - i) / 2].1));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_parameters() {
        let m = Machine::paper_figure2();
        assert_eq!(m.ts, 1000.0);
        assert_eq!(m.tw, 100.0);
        assert_eq!(m.ports, PortModel::AllPort);
    }

    #[test]
    fn single_message_cost_is_affine() {
        let m = Machine::all_port(1000.0, 100.0);
        assert_eq!(m.single_message_cost(0.0), 1000.0);
        assert_eq!(m.single_message_cost(10.0), 2000.0);
    }

    #[test]
    fn all_port_kernel_stage_matches_paper_formula() {
        // Deep-pipelining kernel on an e-link window: e·Ts + α·S·Tw.
        let m = Machine::all_port(1000.0, 100.0);
        // e = 3 links with multiplicities (4, 2, 1): α = 4, S = 5 elems.
        let c = m.stage_cost_from_mults(&[4, 2, 1], 5.0);
        assert_eq!(c, 3.0 * 1000.0 + 4.0 * 5.0 * 100.0);
    }

    #[test]
    fn one_port_serializes_everything() {
        let m = Machine::one_port(1000.0, 100.0);
        let c = m.stage_cost_from_mults(&[4, 2, 1], 5.0);
        assert_eq!(c, 3.0 * 1000.0 + 7.0 * 5.0 * 100.0);
    }

    #[test]
    fn k_port_interpolates() {
        let all = Machine::all_port(0.0, 1.0);
        let one = Machine::one_port(0.0, 1.0);
        let two = Machine { ts: 0.0, tw: 1.0, ports: PortModel::KPort(2) };
        let mults = [3usize, 3, 2];
        let (ca, co, c2) = (
            all.stage_cost_from_mults(&mults, 1.0),
            one.stage_cost_from_mults(&mults, 1.0),
            two.stage_cost_from_mults(&mults, 1.0),
        );
        assert!(ca <= c2 && c2 <= co, "{ca} ≤ {c2} ≤ {co} violated");
        // LPT on 2 ports: jobs 3,3,2 → loads 3+2=5 and 3 → makespan 5.
        assert_eq!(c2, 5.0);
    }

    #[test]
    fn k_port_with_many_ports_equals_all_port() {
        let mults = [4usize, 1, 2, 2];
        let kp = Machine { ts: 7.0, tw: 3.0, ports: PortModel::KPort(16) };
        let ap = Machine { ts: 7.0, tw: 3.0, ports: PortModel::AllPort };
        assert_eq!(kp.stage_cost_from_mults(&mults, 2.0), ap.stage_cost_from_mults(&mults, 2.0));
    }

    #[test]
    fn empty_stage_costs_nothing() {
        let m = Machine::paper_figure2();
        assert_eq!(m.stage_cost_from_mults(&[0, 0, 0], 10.0), 0.0);
    }

    #[test]
    fn calibrate_recovers_an_exact_affine_law() {
        // Noise-free samples from time = 2e-6 + 3e-9·elems must fit back
        // exactly (one linear system, no clamping engaged).
        let mut stats = FabricStats::new();
        for &elems in &[100.0, 1000.0, 10000.0] {
            for _ in 0..5 {
                stats.record(elems, 2e-6 + 3e-9 * elems);
            }
        }
        let m = Machine::calibrate(&stats).expect("three distinct sizes fit");
        assert!((m.ts - 2e-6).abs() < 1e-12, "ts = {}", m.ts);
        assert!((m.tw - 3e-9).abs() < 1e-15, "tw = {}", m.tw);
        assert_eq!(m.ports, PortModel::AllPort);
    }

    #[test]
    fn calibrate_uses_per_size_medians_against_outliers() {
        // One wild outlier per size (a descheduled thread) must not move
        // the fit: the median absorbs it.
        let mut stats = FabricStats::new();
        for &elems in &[64.0, 4096.0] {
            let clean = 1e-6 + 1e-9 * elems;
            stats.record(elems, clean);
            stats.record(elems, clean);
            stats.record(elems, clean * 500.0); // outlier
        }
        let m = Machine::calibrate(&stats).expect("two distinct sizes fit");
        assert!((m.ts - 1e-6).abs() < 1e-10, "ts = {}", m.ts);
        assert!((m.tw - 1e-9).abs() < 1e-13, "tw = {}", m.tw);
    }

    #[test]
    fn calibrate_clamps_to_positive_parameters() {
        // A transport so fast the fitted slope/intercept would be ≤ 0
        // (pointer-shipping channels) still yields usable parameters.
        let mut stats = FabricStats::new();
        stats.record(100.0, 5e-7);
        stats.record(10000.0, 4e-7); // *faster* for the bigger message
        let m = Machine::calibrate(&stats).expect("two distinct sizes fit");
        assert!(m.ts > 0.0 && m.ts.is_finite());
        assert!(m.tw > 0.0 && m.tw.is_finite());
    }

    #[test]
    fn negative_intercept_falls_back_to_a_measured_start_up() {
        // Convex (cache-effect-shaped) medians push the least-squares
        // intercept below zero; Ts must then be a measured magnitude —
        // half the smallest size's median — not a fictitious tiny floor.
        let mut stats = FabricStats::new();
        stats.record(10.0, 1.0);
        stats.record(100.0, 5.0);
        stats.record(1000.0, 400.0);
        let m = Machine::calibrate(&stats).expect("three distinct sizes fit");
        assert_eq!(m.ts, 0.5, "Ts should be half the smallest median");
        assert!(m.tw > 0.0);
    }

    #[test]
    fn calibrate_rejects_a_single_size() {
        // One probe size — including the all-samples-identical case — is
        // a typed error, not a panic.
        let mut stats = FabricStats::new();
        stats.record(64.0, 1e-6);
        stats.record(64.0, 2e-6);
        assert_eq!(
            Machine::calibrate(&stats),
            Err(CalibrationError::SingleSize { distinct: 1, samples: 2 })
        );
        let mut identical = FabricStats::new();
        for _ in 0..5 {
            identical.record(256.0, 3e-6);
        }
        assert_eq!(
            Machine::calibrate(&identical),
            Err(CalibrationError::SingleSize { distinct: 1, samples: 5 })
        );
    }

    #[test]
    fn non_finite_samples_never_panic_the_median_pass() {
        // The degraded-fabric repro: one NaN wall-clock probe used to abort
        // the process inside `median_by_size`'s sort comparator. It must
        // sort totally (no panic) and `calibrate` must surface the typed
        // error instead.
        let mut stats = FabricStats::new();
        stats.record(64.0, 1e-6);
        stats.record(64.0, f64::NAN);
        stats.record(4096.0, f64::INFINITY);
        stats.record(f64::NAN, 2e-6);
        let medians = stats.median_by_size(); // must not panic
        assert!(!medians.is_empty());
        assert_eq!(Machine::calibrate(&stats), Err(CalibrationError::NonFiniteSample));
    }

    #[test]
    fn calibrate_rejects_empty_and_non_finite_stats() {
        assert_eq!(Machine::calibrate(&FabricStats::new()), Err(CalibrationError::Empty));
        let mut nan = FabricStats::new();
        nan.record(64.0, 1e-6);
        nan.record(4096.0, f64::NAN);
        assert_eq!(Machine::calibrate(&nan), Err(CalibrationError::NonFiniteSample));
        let mut inf = FabricStats::new();
        inf.record(f64::INFINITY, 1e-6);
        inf.record(4096.0, 2e-6);
        assert_eq!(Machine::calibrate(&inf), Err(CalibrationError::NonFiniteSample));
    }

    #[test]
    fn calibrate_or_default_degrades_to_the_paper_machine() {
        // The infallible shim: every degenerate input maps to Figure 2...
        assert_eq!(Machine::calibrate_or_default(&FabricStats::new()), Machine::paper_figure2());
        let mut single = FabricStats::new();
        single.record(64.0, 1e-6);
        assert_eq!(Machine::calibrate_or_default(&single), Machine::paper_figure2());
        // ...while well-formed probes still fit.
        let mut good = FabricStats::new();
        for &elems in &[100.0, 1000.0] {
            good.record(elems, 2e-6 + 3e-9 * elems);
        }
        let m = Machine::calibrate_or_default(&good);
        assert!((m.ts - 2e-6).abs() < 1e-12);
        assert_ne!(m, Machine::paper_figure2());
    }

    #[test]
    fn calibration_errors_display_their_cause() {
        assert!(CalibrationError::Empty.to_string().contains("empty"));
        assert!(CalibrationError::Empty.to_string().contains("0 samples"));
        assert!(CalibrationError::NonFiniteSample.to_string().contains("non-finite"));
        let single = CalibrationError::SingleSize { distinct: 1, samples: 7 };
        assert!(single.to_string().contains("got 1"));
        assert!(
            single.to_string().contains("7 samples"),
            "a failed fit must say how many samples it had: {single}"
        );
    }

    #[test]
    fn counts_by_size_histograms_the_probe_mass() {
        let mut stats = FabricStats::new();
        for _ in 0..3 {
            stats.record(64.0, 1e-6);
        }
        stats.record(8.0, 2e-6);
        stats.record(4096.0, 3e-6);
        stats.record(8.0, 4e-6);
        assert_eq!(stats.counts_by_size(), vec![(8.0, 2), (64.0, 3), (4096.0, 1)]);
        assert!(FabricStats::new().counts_by_size().is_empty());
    }

    #[test]
    fn stats_merge_and_median() {
        let mut a = FabricStats::new();
        a.record(8.0, 3.0);
        a.record(8.0, 1.0);
        let mut b = FabricStats::new();
        b.record(8.0, 2.0);
        b.record(2.0, 5.0);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.median_by_size(), vec![(2.0, 5.0), (8.0, 2.0)]);
    }
}
