//! Threaded hypercube multicomputer.
//!
//! The paper's algorithms run on a message-passing multicomputer; this
//! crate is the executable substitute (DESIGN.md §3): every node of the
//! `d`-cube is an OS thread, every link is a pair of directed channels, and
//! the only primitives are neighbor send/receive/exchange, barriers, and
//! dimension-exchange collectives. Nothing is shared between nodes except
//! the traffic meter (atomics) — a program written against [`NodeCtx`]
//! would port to MPI on a real hypercube unchanged in structure.

pub mod collectives;
pub mod meter;
pub mod packet;
pub mod pipelined;
pub mod spmd;

pub use collectives::{all_gather, all_reduce, broadcast, gather};
pub use meter::TrafficMeter;
pub use packet::{pipelined_phase, Packet, PacketChannel, PhaseStats};
pub use pipelined::{pipelined_exchange, unpipelined_exchange};
pub use spmd::{run_spmd, run_spmd_metered, Meterable, NodeCtx};
