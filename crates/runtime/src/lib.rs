//! Threaded hypercube multicomputer.
//!
//! The paper's algorithms run on a message-passing multicomputer; this
//! crate is the executable substitute (DESIGN.md §3): every node of the
//! `d`-cube is an OS thread, every link is a pair of directed channels, and
//! the only primitives are neighbor send/receive/exchange, barriers, and
//! dimension-exchange collectives. Nothing is shared between nodes except
//! the traffic meter (atomics) — a program written against [`NodeCtx`]
//! would port to MPI on a real hypercube unchanged in structure.
//!
//! The crate also owns the machine *model* ([`Machine`], [`PortModel`] —
//! re-exported by `mph_ccpipe` for the analytic cost layer) and its two
//! runtime halves:
//!
//! * **enforcement** — [`fabric`]: a throttled link layer charging every
//!   message `Ts + S·Tw` against the port configuration on a
//!   deterministic virtual clock ([`run_spmd_fabric`]);
//! * **measurement** — [`measure_channel_fabric`] probes the live channel
//!   transport with a wall clock and [`Machine::calibrate`] fits `Ts`/`Tw`
//!   to the samples, so schedulers can optimize for the machine they
//!   actually run on.

pub mod collectives;
pub mod fabric;
pub mod jobmux;
pub mod machine;
pub mod meter;
pub mod packet;
pub mod pipelined;
pub mod scenario;
pub mod spmd;
pub mod trace;

pub use collectives::{all_gather, all_reduce, broadcast, gather};
pub use fabric::{
    calibrate_channel_machine, measure_channel_fabric, FabricConfigError, FabricModel, FabricReport,
};
pub use jobmux::JobMux;
pub use machine::{CalibrationError, FabricStats, Machine, PortModel};
pub use meter::TrafficMeter;
pub use packet::{pipelined_phase, pipelined_phase_stamped, Packet, PacketChannel, PhaseStats};
pub use pipelined::{pipelined_exchange, unpipelined_exchange};
pub use scenario::{LinkDeath, Scenario, ScenarioError, ScenarioSpec};
pub use spmd::{
    run_spmd, run_spmd_fabric, run_spmd_fabric_jobs, run_spmd_fabric_jobs_traced, run_spmd_metered,
    Meterable, NodeCtx,
};
pub use trace::{NopSink, RingSink, SinkHandle, TraceEvent, TraceSink};
