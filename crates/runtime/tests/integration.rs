//! Integration tests for the threaded multicomputer: every SPMD collective
//! must agree with a sequential reference computed from the same per-node
//! contributions, the traffic meter must report schedule-independent
//! counts at every cube size (thread count), the packet window must
//! enforce and report in-flight occupancy exactly, and wall-clock
//! calibration of the channel fabric must be finite, positive, and stable.

use mph_runtime::{
    all_gather, all_reduce, broadcast, gather, measure_channel_fabric, pipelined_exchange,
    run_spmd, run_spmd_metered, unpipelined_exchange, Machine, Packet, PacketChannel,
};

/// The deterministic per-node contribution used throughout: node `n` of a
/// `d`-cube contributes `contribution(d, n)`.
fn contribution(d: usize, n: usize) -> f64 {
    (n as f64 * 13.0 + d as f64 * 7.0) % 11.0 + 1.0
}

/// A fold to all-reduce with, paired with its sequentially computed answer.
type FoldCase = (fn(f64, f64) -> f64, f64);

#[test]
fn all_reduce_agrees_with_sequential_fold() {
    // Sum, product, max, min — checked on every cube up to 32 threads.
    for d in 0..=5 {
        let p = 1usize << d;
        let inputs: Vec<f64> = (0..p).map(|n| contribution(d, n)).collect();
        let cases: Vec<FoldCase> = vec![
            (|a, b| a + b, inputs.iter().sum::<f64>()),
            (|a, b| a * b, inputs.iter().product::<f64>()),
            (f64::max, inputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
            (f64::min, inputs.iter().cloned().fold(f64::INFINITY, f64::min)),
        ];
        for (fold, want) in cases {
            let results = run_spmd::<f64, f64, _>(d, move |ctx| {
                all_reduce(ctx, contribution(d, ctx.id()), fold)
            });
            for (n, got) in results.iter().enumerate() {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "d={d} node {n}: {got} vs sequential {want}"
                );
            }
        }
    }
}

#[test]
fn all_gather_agrees_with_sequential_collection() {
    for d in 0..=5 {
        let p = 1usize << d;
        let want: Vec<f64> = (0..p).map(|n| contribution(d, n)).collect();
        let results = run_spmd::<f64, Vec<f64>, _>(d, move |ctx| {
            all_gather(ctx, contribution(d, ctx.id()))
                .into_iter()
                .map(|v| v.expect("piece missing"))
                .collect()
        });
        for (n, got) in results.iter().enumerate() {
            assert_eq!(got, &want, "d={d} node {n}");
        }
    }
}

#[test]
fn broadcast_from_every_root_matches_roots_value() {
    let d = 3;
    for root in 0..(1usize << d) {
        let sent = contribution(d, root);
        let results = run_spmd::<f64, f64, _>(d, move |ctx| {
            let value = (ctx.id() == root).then(|| contribution(d, ctx.id()));
            broadcast(ctx, root, value)
        });
        assert!(results.iter().all(|&v| v == sent), "root={root}: {results:?}");
    }
}

#[test]
fn gather_to_every_root_matches_sequential_collection() {
    let d = 3;
    let p = 1usize << d;
    let want: Vec<f64> = (0..p).map(|n| contribution(d, n)).collect();
    for root in 0..p {
        let results = run_spmd::<f64, Option<Vec<f64>>, _>(d, move |ctx| {
            gather(ctx, root, contribution(d, ctx.id()))
                .map(|vs| vs.into_iter().map(|v| v.expect("piece missing")).collect())
        });
        for (n, r) in results.into_iter().enumerate() {
            if n == root {
                assert_eq!(r.expect("root has no result"), want, "root={root}");
            } else {
                assert!(r.is_none(), "non-root {n} produced a gather result");
            }
        }
    }
}

#[test]
fn meter_counts_are_exact_at_every_thread_count() {
    // One symmetric exchange of `10 + dim` elements per dimension: every
    // node sends exactly one message per dimension, so the totals are a
    // closed-form function of d — independent of thread scheduling.
    for d in 1..=5 {
        let p = 1u64 << d;
        let (_, meter) = run_spmd_metered::<Vec<f64>, (), _>(d, move |ctx| {
            for dim in 0..d {
                let _ = ctx.exchange(dim, vec![0.0; 10 + dim]);
            }
        });
        for dim in 0..d {
            assert_eq!(meter.messages(dim), p, "d={d} dim={dim} messages");
            assert_eq!(meter.volume(dim), p * (10 + dim as u64), "d={d} dim={dim} volume");
        }
        assert_eq!(meter.total_messages(), p * d as u64);
        let want_volume: u64 = (0..d as u64).map(|dim| p * (10 + dim)).sum();
        assert_eq!(meter.total_volume(), want_volume);
    }
}

#[test]
fn meter_counts_are_reproducible_across_runs() {
    // Same program, different nondeterministic thread interleavings — the
    // meter must not depend on who won which race.
    let run = || {
        let (_, meter) = run_spmd_metered::<f64, f64, _>(4, |ctx| {
            all_reduce(ctx, ctx.id() as f64, |a, b| a + b)
        });
        (meter.total_messages(), meter.total_volume(), meter.volume_by_dim())
    };
    let first = run();
    for _ in 0..5 {
        assert_eq!(run(), first);
    }
    // All-reduce is one message per node per dimension of one f64 element.
    assert_eq!(first.0, 4 * 16);
    assert_eq!(first.1, 4 * 16);
}

#[test]
fn packet_channel_enforces_the_window_and_reports_exact_peaks() {
    // Direct unit exercise of the windowed link view: interleaved
    // sends/receives across two dimensions; the per-dimension peak must be
    // the exact high-water mark, not merely ≤ the window.
    let results = run_spmd::<Packet<Vec<f64>>, (), _>(2, |ctx| {
        let mk = |k: u32, q: u32| Packet::new(k, q, vec![0.0; 4]);
        let mut chan = PacketChannel::new(ctx, 3);
        // dim 0: fill to 2, drain 1, refill to 3 (the window) — peak 3.
        chan.send(0, mk(0, 0));
        chan.send(0, mk(0, 1));
        assert_eq!(chan.in_flight(0), 2);
        let _ = chan.recv(0);
        assert_eq!(chan.in_flight(0), 1);
        chan.send(0, mk(0, 2));
        chan.send(0, mk(0, 3));
        assert_eq!(chan.in_flight(0), 3, "window fully occupied");
        // dim 1: a single round trip — peak 1, independent of dim 0.
        chan.send(1, mk(1, 0));
        let _ = chan.recv(1);
        // Drain dim 0 so the partner's symmetric sends pair up.
        for _ in 0..3 {
            let _ = chan.recv(0);
        }
        let stats = chan.stats();
        assert_eq!(stats.window, 3);
        assert_eq!(stats.peak_in_flight, vec![3, 1]);
        assert_eq!(chan.in_flight(0), 0);
    });
    assert_eq!(results.len(), 4);
}

#[test]
fn packet_channel_rejects_unmatched_receives() {
    // A recv with no windowed send outstanding means raw traffic got mixed
    // into the windowed protocol — it must panic, not corrupt accounting.
    let results = run_spmd::<Packet<Vec<f64>>, String, _>(1, |ctx| {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut chan = PacketChannel::new(ctx, 2);
            let _ = chan.recv(0);
        }))
        .expect_err("unmatched recv must panic");
        err.downcast_ref::<String>().expect("panic carries a message").clone()
    });
    for msg in results {
        assert!(msg.contains("no in-flight packet"), "unexpected panic: {msg}");
    }
}

#[test]
fn channel_fabric_calibration_is_finite_positive_and_stable() {
    // The promoted calibration test: Machine::calibrate on the live
    // channel runtime must return finite, positive Ts/Tw whose predictions
    // are stable (within a generous wall-clock tolerance) across two
    // independent probe runs.
    let probe = || {
        let stats = measure_channel_fabric(1, &[256, 4096, 32768], 9);
        assert_eq!(stats.len(), 2 * 3 * 9, "2 nodes × 3 sizes × 9 reps");
        Machine::calibrate(&stats).expect("three distinct probe sizes fit")
    };
    let (a, b) = (probe(), probe());
    for m in [&a, &b] {
        assert!(m.ts.is_finite() && m.ts > 0.0, "ts = {}", m.ts);
        assert!(m.tw.is_finite() && m.tw > 0.0, "tw = {}", m.tw);
    }
    // Stability: the fitted cost of a representative large message (the
    // quantity schedulers actually consume) agrees across runs within 4x
    // — tight enough to catch a broken fit, loose enough for CI noise.
    let (ca, cb) = (a.single_message_cost(100_000.0), b.single_message_cost(100_000.0));
    let ratio = ca.max(cb) / ca.min(cb);
    assert!(ratio < 4.0, "calibration unstable: {ca:.3e} vs {cb:.3e} ({ratio:.2}x)");
}

#[test]
fn pipelining_preserves_results_and_traffic_volume() {
    // The pipelined exchange is a schedule transformation: per-packet
    // results and total per-dimension volume must match the reference loop
    // exactly; only the concurrency pattern differs.
    let links = vec![0usize, 1, 0, 2, 0, 1, 0]; // D_3^BR
    for q in [1usize, 3, 8] {
        let links_a = links.clone();
        let (naive, meter_a) = run_spmd_metered::<Vec<f64>, Vec<Vec<f64>>, _>(3, move |ctx| {
            let packets: Vec<Vec<f64>> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            unpipelined_exchange(ctx, &links_a, packets, |k, _q, mut p| {
                p.push(k as f64);
                p
            })
        });
        let links_b = links.clone();
        let (piped, meter_b) = run_spmd_metered::<Vec<f64>, Vec<Vec<f64>>, _>(3, move |ctx| {
            let packets: Vec<Vec<f64>> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            pipelined_exchange(ctx, &links_b, packets, |k, _q, mut p| {
                p.push(k as f64);
                p
            })
        });
        assert_eq!(naive, piped, "q={q}");
        assert_eq!(meter_a.volume_by_dim(), meter_b.volume_by_dim(), "q={q}");
        assert_eq!(meter_a.total_messages(), meter_b.total_messages(), "q={q}");
    }
}
