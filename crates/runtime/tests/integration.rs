//! Integration tests for the threaded multicomputer: every SPMD collective
//! must agree with a sequential reference computed from the same per-node
//! contributions, and the traffic meter must report schedule-independent
//! counts at every cube size (thread count).

use mph_runtime::{
    all_gather, all_reduce, broadcast, gather, pipelined_exchange, run_spmd, run_spmd_metered,
    unpipelined_exchange,
};

/// The deterministic per-node contribution used throughout: node `n` of a
/// `d`-cube contributes `contribution(d, n)`.
fn contribution(d: usize, n: usize) -> f64 {
    (n as f64 * 13.0 + d as f64 * 7.0) % 11.0 + 1.0
}

/// A fold to all-reduce with, paired with its sequentially computed answer.
type FoldCase = (fn(f64, f64) -> f64, f64);

#[test]
fn all_reduce_agrees_with_sequential_fold() {
    // Sum, product, max, min — checked on every cube up to 32 threads.
    for d in 0..=5 {
        let p = 1usize << d;
        let inputs: Vec<f64> = (0..p).map(|n| contribution(d, n)).collect();
        let cases: Vec<FoldCase> = vec![
            (|a, b| a + b, inputs.iter().sum::<f64>()),
            (|a, b| a * b, inputs.iter().product::<f64>()),
            (f64::max, inputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
            (f64::min, inputs.iter().cloned().fold(f64::INFINITY, f64::min)),
        ];
        for (fold, want) in cases {
            let results = run_spmd::<f64, f64, _>(d, move |ctx| {
                all_reduce(ctx, contribution(d, ctx.id()), fold)
            });
            for (n, got) in results.iter().enumerate() {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "d={d} node {n}: {got} vs sequential {want}"
                );
            }
        }
    }
}

#[test]
fn all_gather_agrees_with_sequential_collection() {
    for d in 0..=5 {
        let p = 1usize << d;
        let want: Vec<f64> = (0..p).map(|n| contribution(d, n)).collect();
        let results = run_spmd::<f64, Vec<f64>, _>(d, move |ctx| {
            all_gather(ctx, contribution(d, ctx.id()))
                .into_iter()
                .map(|v| v.expect("piece missing"))
                .collect()
        });
        for (n, got) in results.iter().enumerate() {
            assert_eq!(got, &want, "d={d} node {n}");
        }
    }
}

#[test]
fn broadcast_from_every_root_matches_roots_value() {
    let d = 3;
    for root in 0..(1usize << d) {
        let sent = contribution(d, root);
        let results = run_spmd::<f64, f64, _>(d, move |ctx| {
            let value = (ctx.id() == root).then(|| contribution(d, ctx.id()));
            broadcast(ctx, root, value)
        });
        assert!(results.iter().all(|&v| v == sent), "root={root}: {results:?}");
    }
}

#[test]
fn gather_to_every_root_matches_sequential_collection() {
    let d = 3;
    let p = 1usize << d;
    let want: Vec<f64> = (0..p).map(|n| contribution(d, n)).collect();
    for root in 0..p {
        let results = run_spmd::<f64, Option<Vec<f64>>, _>(d, move |ctx| {
            gather(ctx, root, contribution(d, ctx.id()))
                .map(|vs| vs.into_iter().map(|v| v.expect("piece missing")).collect())
        });
        for (n, r) in results.into_iter().enumerate() {
            if n == root {
                assert_eq!(r.expect("root has no result"), want, "root={root}");
            } else {
                assert!(r.is_none(), "non-root {n} produced a gather result");
            }
        }
    }
}

#[test]
fn meter_counts_are_exact_at_every_thread_count() {
    // One symmetric exchange of `10 + dim` elements per dimension: every
    // node sends exactly one message per dimension, so the totals are a
    // closed-form function of d — independent of thread scheduling.
    for d in 1..=5 {
        let p = 1u64 << d;
        let (_, meter) = run_spmd_metered::<Vec<f64>, (), _>(d, move |ctx| {
            for dim in 0..d {
                let _ = ctx.exchange(dim, vec![0.0; 10 + dim]);
            }
        });
        for dim in 0..d {
            assert_eq!(meter.messages(dim), p, "d={d} dim={dim} messages");
            assert_eq!(meter.volume(dim), p * (10 + dim as u64), "d={d} dim={dim} volume");
        }
        assert_eq!(meter.total_messages(), p * d as u64);
        let want_volume: u64 = (0..d as u64).map(|dim| p * (10 + dim)).sum();
        assert_eq!(meter.total_volume(), want_volume);
    }
}

#[test]
fn meter_counts_are_reproducible_across_runs() {
    // Same program, different nondeterministic thread interleavings — the
    // meter must not depend on who won which race.
    let run = || {
        let (_, meter) = run_spmd_metered::<f64, f64, _>(4, |ctx| {
            all_reduce(ctx, ctx.id() as f64, |a, b| a + b)
        });
        (meter.total_messages(), meter.total_volume(), meter.volume_by_dim())
    };
    let first = run();
    for _ in 0..5 {
        assert_eq!(run(), first);
    }
    // All-reduce is one message per node per dimension of one f64 element.
    assert_eq!(first.0, 4 * 16);
    assert_eq!(first.1, 4 * 16);
}

#[test]
fn pipelining_preserves_results_and_traffic_volume() {
    // The pipelined exchange is a schedule transformation: per-packet
    // results and total per-dimension volume must match the reference loop
    // exactly; only the concurrency pattern differs.
    let links = vec![0usize, 1, 0, 2, 0, 1, 0]; // D_3^BR
    for q in [1usize, 3, 8] {
        let links_a = links.clone();
        let (naive, meter_a) = run_spmd_metered::<Vec<f64>, Vec<Vec<f64>>, _>(3, move |ctx| {
            let packets: Vec<Vec<f64>> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            unpipelined_exchange(ctx, &links_a, packets, |k, _q, mut p| {
                p.push(k as f64);
                p
            })
        });
        let links_b = links.clone();
        let (piped, meter_b) = run_spmd_metered::<Vec<f64>, Vec<Vec<f64>>, _>(3, move |ctx| {
            let packets: Vec<Vec<f64>> = (0..q).map(|i| vec![ctx.id() as f64, i as f64]).collect();
            pipelined_exchange(ctx, &links_b, packets, |k, _q, mut p| {
                p.push(k as f64);
                p
            })
        });
        assert_eq!(naive, piped, "q={q}");
        assert_eq!(meter_a.volume_by_dim(), meter_b.volume_by_dim(), "q={q}");
        assert_eq!(meter_a.total_messages(), meter_b.total_messages(), "q={q}");
    }
}
