//! Cross-validation of the analytic cost models against the simulator —
//! the machinery behind the `validate_simnet` experiment (X1 in DESIGN.md).

use crate::schedule::pipelined_phase_schedule;
use crate::sim::{simulate_synchronized, SimReport, StartupModel};
use mph_ccpipe::{CcCube, Machine, PhaseCostModel};
use mph_core::OrderingFamily;

/// One validation sample: a pipelined exchange phase priced by both the
/// closed-form model and the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationSample {
    pub family: OrderingFamily,
    pub e: usize,
    pub q: usize,
    pub analytic: f64,
    pub simulated_strict: f64,
    pub simulated_overlapped: f64,
}

impl ValidationSample {
    /// Relative deviation of the strict simulation from the model (should
    /// be ~0: the model *is* the strict semantics).
    pub fn strict_gap(&self) -> f64 {
        (self.simulated_strict - self.analytic).abs() / self.analytic.max(1e-300)
    }

    /// Relative saving of overlapped start-ups over the closed form —
    /// how optimistic a real NIC pipeline could be vs. the paper's model.
    pub fn overlap_saving(&self) -> f64 {
        (self.analytic - self.simulated_overlapped) / self.analytic.max(1e-300)
    }
}

/// Runs one sample.
pub fn validate_phase(
    family: OrderingFamily,
    e: usize,
    elems: f64,
    q: usize,
    machine: &Machine,
) -> ValidationSample {
    let cc = CcCube::exchange_phase(family, e, elems);
    let model = PhaseCostModel::new(&cc, *machine);
    let sched = pipelined_phase_schedule(e, &cc, q);
    let strict: SimReport =
        simulate_synchronized(&sched, machine, StartupModel::SerializedThenParallel);
    let overlapped: SimReport = simulate_synchronized(&sched, machine, StartupModel::Overlapped);
    ValidationSample {
        family,
        e,
        q,
        analytic: model.cost(q),
        simulated_strict: strict.makespan,
        simulated_overlapped: overlapped.makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_simulation_reproduces_model_exactly() {
        let machine = Machine::paper_figure2();
        for family in OrderingFamily::ALL {
            for (e, q) in [(4usize, 3usize), (5, 8), (6, 63), (6, 200)] {
                let s = validate_phase(family, e, 1000.0, q, &machine);
                assert!(s.strict_gap() < 1e-9, "{family} e={e} q={q}: gap {}", s.strict_gap());
            }
        }
    }

    #[test]
    fn overlap_saving_is_bounded_by_startups() {
        // Overlapped start-ups can save at most (n−1)·Ts per stage.
        let machine = Machine::paper_figure2();
        let s = validate_phase(OrderingFamily::PermutedBr, 6, 5000.0, 63, &machine);
        assert!(s.overlap_saving() >= 0.0);
        assert!(s.overlap_saving() < 0.5, "saving {}", s.overlap_saving());
    }
}
