//! Batch schedule replay: the simulator view of multi-problem batching.
//!
//! The batch scheduler runs `N` independent jobs' lowered plans over one
//! fabric; this module rebuilds that execution as [`CommSchedule`]s so the
//! network simulator can cross-validate the runtime's measured makespans
//! and the `mph_ccpipe::batch_cost` predictions against a third,
//! independent implementation of the machine model:
//!
//! * [`job_schedule`] — one job's full communication (its plan chain with
//!   the driver's per-phase pipelining degrees) as a stage schedule;
//! * [`serial_replay`] — FIFO execution: the jobs' stages concatenated in
//!   order, exactly the back-to-back makespan;
//! * [`interleaved_replay`] — round-robin execution: stage `i` of the
//!   merged schedule carries stage `i` of *every* job, with a node's
//!   same-dimension sends of one stage combined into a single message
//!   (the simulator's combining assumption, the same one
//!   [`plan_pipelined_schedule`](crate::plan::plan_pipelined_schedule)
//!   makes within a job). On an all-port machine jobs whose stages hit
//!   different dimensions overlap fully; colliding stages serialize on
//!   the shared wire — which is precisely the gain and the limit the
//!   batch cost model prices.
//!
//! Volumes are conserved exactly by construction (the replay moves the
//! plans' element counts); the makespans bound the runtime from both
//! sides: the synchronized simulator's per-stage barrier is slightly
//! stricter than the runtime's dataflow clock, so `interleaved_replay` is
//! an upper-shaped estimate, while combining start-ups makes it cheaper by
//! `(n − 1)·Ts` per collision — both effects are small against the block
//! transmission times the batch targets.

use crate::schedule::{CommSchedule, CommStage, NodeSend};
use mph_core::CommPlan;

/// One job's whole communication as a stage schedule: its sweep-chained
/// plans lowered with the driver's per-phase packet counts (`qs[s]` for
/// sweep `s`, one entry per exchange phase — `choose_qs` output).
pub fn job_schedule(plans: &[CommPlan], qs: &[Vec<usize>]) -> CommSchedule {
    assert_eq!(plans.len(), qs.len(), "one qs vector per sweep plan");
    assert!(!plans.is_empty(), "a job needs at least one sweep plan");
    let d = plans[0].d();
    let mut stages = Vec::new();
    for (plan, q) in plans.iter().zip(qs) {
        stages.extend(crate::plan::plan_pipelined_schedule(plan, q).stages);
    }
    CommSchedule::new(d, stages)
}

/// FIFO-serial replay: every job's stages, back to back in `order`.
pub fn serial_replay(jobs: &[CommSchedule], order: &[usize]) -> CommSchedule {
    assert!(!jobs.is_empty(), "an empty batch has no schedule");
    let d = jobs[0].d;
    let mut stages = Vec::new();
    for &j in order {
        assert_eq!(jobs[j].d, d, "all jobs must share one cube");
        stages.extend(jobs[j].stages.iter().cloned());
    }
    CommSchedule::new(d, stages)
}

/// Round-robin replay: merged stage `i` unions every job's stage `i`,
/// combining a node's same-dimension sends into one message. Jobs shorter
/// than the longest simply stop contributing.
pub fn interleaved_replay(jobs: &[CommSchedule]) -> CommSchedule {
    assert!(!jobs.is_empty(), "an empty batch has no schedule");
    let d = jobs[0].d;
    let p = 1usize << d;
    let longest = jobs.iter().map(|j| j.stages.len()).max().unwrap_or(0);
    let mut stages = Vec::with_capacity(longest);
    for i in 0..longest {
        let mut per_node: Vec<Vec<NodeSend>> = vec![Vec::new(); p];
        for job in jobs {
            assert_eq!(job.d, d, "all jobs must share one cube");
            let Some(stage) = job.stages.get(i) else { continue };
            for (n, bundle) in per_node.iter_mut().enumerate() {
                for s in stage.sends(n) {
                    match bundle.iter_mut().find(|b| b.dim == s.dim) {
                        Some(b) => b.elems += s.elems,
                        None => bundle.push(*s),
                    }
                }
            }
        }
        stages.push(CommStage::per_node(per_node));
    }
    CommSchedule::new(d, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_synchronized, StartupModel};
    use mph_ccpipe::Machine;
    use mph_core::{BlockLayout, BlockPartition, OrderingFamily, SweepSchedule};

    fn chain(m: usize, d: usize, family: OrderingFamily, sweeps: usize) -> Vec<CommPlan> {
        let partition = BlockPartition::new(m, 2 << d);
        let mut layout = BlockLayout::canonical(d);
        (0..sweeps)
            .map(|s| {
                let schedule = SweepSchedule::sweep(d, family, s);
                let plan = CommPlan::lower(&schedule, &partition, &layout, 2 * m);
                layout = plan.final_layout().clone();
                plan
            })
            .collect()
    }

    fn ones(plans: &[CommPlan]) -> Vec<Vec<usize>> {
        plans.iter().map(|p| p.exchange_phases().map(|_| 1).collect()).collect()
    }

    fn sched(m: usize, d: usize, family: OrderingFamily) -> CommSchedule {
        let plans = chain(m, d, family, 1);
        let qs = ones(&plans);
        job_schedule(&plans, &qs)
    }

    #[test]
    fn replays_conserve_volume_exactly() {
        let d = 2;
        let a = sched(32, d, OrderingFamily::Br);
        let b = sched(24, d, OrderingFamily::Degree4);
        let want: Vec<f64> =
            a.volume_by_dim().iter().zip(b.volume_by_dim()).map(|(x, y)| x + y).collect();
        let serial = serial_replay(&[a.clone(), b.clone()], &[0, 1]);
        let inter = interleaved_replay(&[a, b]);
        assert_eq!(serial.volume_by_dim(), want);
        assert_eq!(inter.volume_by_dim(), want);
    }

    #[test]
    fn serial_replay_makespan_is_the_sum_of_solo_makespans() {
        let machine = Machine::all_port(1000.0, 100.0);
        let jobs = [sched(32, 2, OrderingFamily::Br), sched(32, 2, OrderingFamily::PermutedBr)];
        let solo: f64 = jobs
            .iter()
            .map(|j| simulate_synchronized(j, &machine, StartupModel::SerializedThenParallel))
            .map(|r| r.makespan)
            .sum();
        let serial = serial_replay(&jobs, &[0, 1]);
        let r = simulate_synchronized(&serial, &machine, StartupModel::SerializedThenParallel);
        assert!((r.makespan - solo).abs() < 1e-9 * solo, "{} vs {solo}", r.makespan);
    }

    #[test]
    fn interleaved_replay_never_beats_the_wire_and_beats_serial_on_all_port() {
        // Different families → partially disjoint links: interleaving
        // overlaps transmissions on the all-port machine and must land
        // strictly below the serial replay, but not below the busiest
        // dimension's pure wire time.
        let machine = Machine::all_port(1000.0, 100.0);
        let jobs = [
            sched(64, 3, OrderingFamily::Br),
            sched(64, 3, OrderingFamily::Degree4),
            sched(64, 3, OrderingFamily::PermutedBr),
        ];
        let serial = simulate_synchronized(
            &serial_replay(&jobs, &[0, 1, 2]),
            &machine,
            StartupModel::SerializedThenParallel,
        );
        let inter = simulate_synchronized(
            &interleaved_replay(&jobs),
            &machine,
            StartupModel::SerializedThenParallel,
        );
        assert!(
            inter.makespan < serial.makespan,
            "interleave {} vs serial {}",
            inter.makespan,
            serial.makespan
        );
        // Busiest dimension's per-link wire time is a hard floor: each of
        // the p nodes owns one outgoing link per dimension, so a
        // dimension's busy time spreads over p directed links at best.
        let p = 8.0;
        let floor = inter.dim_busy.iter().fold(0.0f64, |a, &b| a.max(b)) / p;
        assert!(inter.makespan >= floor, "makespan {} under wire floor {floor}", inter.makespan);
    }

    #[test]
    fn one_port_interleaving_gains_nothing_in_the_replay() {
        // A single port serializes all wire seconds; the replay's combined
        // stages must cost at least the serial stages' wire time (they
        // save only start-up combining).
        let machine = Machine::one_port(1000.0, 100.0);
        let jobs = [sched(32, 2, OrderingFamily::Br), sched(32, 2, OrderingFamily::Degree4)];
        let serial = simulate_synchronized(
            &serial_replay(&jobs, &[0, 1]),
            &machine,
            StartupModel::SerializedThenParallel,
        );
        let inter = simulate_synchronized(
            &interleaved_replay(&jobs),
            &machine,
            StartupModel::SerializedThenParallel,
        );
        // Wire time is conserved; only start-ups can combine away. The
        // gain must therefore be bounded by the start-up share.
        let max_startup_saving = serial.messages as f64 * machine.ts;
        assert!(inter.makespan >= serial.makespan - max_startup_saving);
    }

    #[test]
    fn jobs_of_unequal_length_still_merge() {
        let a = sched(32, 2, OrderingFamily::Br); // 1 sweep
        let plans = chain(32, 2, OrderingFamily::Br, 2);
        let qs = ones(&plans);
        let b = job_schedule(&plans, &qs); // 2 sweeps
        let inter = interleaved_replay(&[a.clone(), b.clone()]);
        assert_eq!(inter.stages.len(), b.stages.len());
        let want: Vec<f64> =
            a.volume_by_dim().iter().zip(b.volume_by_dim()).map(|(x, y)| x + y).collect();
        assert_eq!(inter.volume_by_dim(), want);
    }
}
