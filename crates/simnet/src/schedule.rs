//! Communication schedules: what every node sends at every stage.
//!
//! The simulator consumes a list of [`CommStage`]s. Within a stage each
//! node issues a set of messages to neighbors (one per hypercube dimension
//! at most — messages sharing a link have already been combined, as the
//! paper prescribes). The builders produce the two schedule shapes the
//! Jacobi algorithms generate: the unpipelined sweep (one block message per
//! transition) and the pipelined exchange phase (windowed packet bundles).
//!
//! The paper's schedules are SPMD — every node sends the same bundle — so
//! a stage stores the bundle **once** behind an [`Arc`] rather than
//! cloning it `2^d` times; irregular per-node stages remain available for
//! the simulator's relaxation studies. Access is uniform through
//! [`CommStage::sends`]/[`CommStage::iter`].

use mph_ccpipe::{pipelined_schedule, CcCube};
use std::sync::Arc;

/// One message: `elems` data elements across dimension `dim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSend {
    pub dim: usize,
    pub elems: f64,
}

/// One synchronized communication stage.
///
/// In the SPMD algorithms of the paper all nodes send the same bundle
/// (stored once, shared); the simulator also accepts arbitrary per-node
/// lists for irregular studies.
#[derive(Debug, Clone)]
pub enum CommStage {
    /// Every one of `nodes` nodes sends the same shared bundle.
    Spmd { nodes: usize, bundle: Arc<[NodeSend]> },
    /// Arbitrary per-node bundles (`sends[n]` is node `n`'s list).
    PerNode { sends: Vec<Vec<NodeSend>> },
}

impl CommStage {
    /// An SPMD stage: every one of the `2^d` nodes sends `bundle` —
    /// stored once, not cloned per node.
    pub fn spmd(d: usize, bundle: Vec<NodeSend>) -> Self {
        CommStage::Spmd { nodes: 1 << d, bundle: bundle.into() }
    }

    /// An irregular stage with explicit per-node bundles.
    pub fn per_node(sends: Vec<Vec<NodeSend>>) -> Self {
        CommStage::PerNode { sends }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match self {
            CommStage::Spmd { nodes, .. } => *nodes,
            CommStage::PerNode { sends } => sends.len(),
        }
    }

    /// Node `n`'s outgoing messages, in issue order.
    pub fn sends(&self, n: usize) -> &[NodeSend] {
        match self {
            CommStage::Spmd { nodes, bundle } => {
                assert!(n < *nodes, "node {n} out of range");
                bundle
            }
            CommStage::PerNode { sends } => &sends[n],
        }
    }

    /// Iterates every node's bundle in node order.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeSend]> {
        (0..self.nodes()).map(move |n| self.sends(n))
    }

    /// Total messages in the stage.
    pub fn message_count(&self) -> usize {
        match self {
            CommStage::Spmd { nodes, bundle } => nodes * bundle.len(),
            CommStage::PerNode { sends } => sends.iter().map(|s| s.len()).sum(),
        }
    }

    /// Total element volume in the stage.
    pub fn volume(&self) -> f64 {
        match self {
            CommStage::Spmd { nodes, bundle } => {
                *nodes as f64 * bundle.iter().map(|m| m.elems).sum::<f64>()
            }
            CommStage::PerNode { sends } => sends.iter().flatten().map(|m| m.elems).sum(),
        }
    }
}

impl PartialEq for CommStage {
    /// Stages compare by what each node sends, not by representation: an
    /// SPMD stage equals a per-node stage with identical bundles.
    fn eq(&self, other: &Self) -> bool {
        self.nodes() == other.nodes() && self.iter().eq(other.iter())
    }
}

/// A full schedule plus the cube dimension it runs on.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSchedule {
    pub d: usize,
    pub stages: Vec<CommStage>,
}

impl CommSchedule {
    pub fn new(d: usize, stages: Vec<CommStage>) -> Self {
        for st in &stages {
            assert_eq!(st.nodes(), 1 << d, "stage node count must be 2^d");
            for sends in st.iter() {
                for s in sends {
                    assert!(s.dim < d, "dimension {} out of range", s.dim);
                    assert!(s.elems >= 0.0);
                }
            }
        }
        CommSchedule { d, stages }
    }

    pub fn message_count(&self) -> usize {
        self.stages.iter().map(|s| s.message_count()).sum()
    }

    pub fn volume(&self) -> f64 {
        self.stages.iter().map(|s| s.volume()).sum()
    }

    /// Per-dimension element volume — the prediction the runtime's traffic
    /// meter is checked against.
    pub fn volume_by_dim(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.d.max(1)];
        for st in &self.stages {
            for sends in st.iter() {
                for s in sends {
                    v[s.dim] += s.elems;
                }
            }
        }
        v
    }
}

/// The unpipelined exchange phase: each transition is one stage in which
/// every node sends the whole block (`cc.message_elems`) across the
/// transition's link.
pub fn unpipelined_phase_schedule(d: usize, cc: &CcCube) -> CommSchedule {
    let stages = cc
        .link_seq
        .iter()
        .map(|&dim| CommStage::spmd(d, vec![NodeSend { dim, elems: cc.message_elems }]))
        .collect();
    CommSchedule::new(d, stages)
}

/// The pipelined exchange phase with degree `q`: stage `s` sends, for every
/// distinct link of the window, one combined message of
/// `multiplicity × (elems/q)` elements. Issue order follows first
/// appearance in the window (the paper's `a-b-c` notation order).
pub fn pipelined_phase_schedule(d: usize, cc: &CcCube, q: usize) -> CommSchedule {
    let sched = pipelined_schedule(cc, q);
    let s_elems = cc.message_elems / q as f64;
    let stages = sched
        .stages
        .iter()
        .map(|st| {
            let window = &cc.link_seq[st.lo..=st.hi];
            let mut order: Vec<usize> = Vec::new();
            let mut mult = vec![0usize; d];
            for &l in window {
                if mult[l] == 0 {
                    order.push(l);
                }
                mult[l] += 1;
            }
            let bundle = order
                .into_iter()
                .map(|dim| NodeSend { dim, elems: mult[dim] as f64 * s_elems })
                .collect();
            CommStage::spmd(d, bundle)
        })
        .collect();
    CommSchedule::new(d, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_core::OrderingFamily;

    #[test]
    fn unpipelined_schedule_shape() {
        let cc = CcCube::exchange_phase(OrderingFamily::Br, 3, 64.0);
        let s = unpipelined_phase_schedule(3, &cc);
        assert_eq!(s.stages.len(), 7);
        assert_eq!(s.message_count(), 7 * 8);
        assert_eq!(s.volume(), 7.0 * 8.0 * 64.0);
    }

    #[test]
    fn pipelined_schedule_conserves_volume() {
        let cc = CcCube::exchange_phase(OrderingFamily::Degree4, 4, 120.0);
        for q in [1usize, 2, 4, 8, 15, 30] {
            let s = pipelined_phase_schedule(4, &cc, q);
            // Every packet of every iteration crosses the network once:
            // volume = K · elems per node.
            let expect = 15.0 * 120.0 * 16.0;
            assert!((s.volume() - expect).abs() < 1e-6, "q={q}: {}", s.volume());
        }
    }

    #[test]
    fn pipelined_stage_combines_repeated_links() {
        // BR window <0,1,0> must become messages 0:2·S, 1:1·S.
        let cc = CcCube::exchange_phase(OrderingFamily::Br, 3, 30.0);
        let s = pipelined_phase_schedule(3, &cc, 3);
        // Stage 2 (first kernel stage) has window 0,1,0.
        let bundle = s.stages[2].sends(0);
        assert_eq!(bundle.len(), 2);
        assert_eq!(bundle[0], NodeSend { dim: 0, elems: 20.0 });
        assert_eq!(bundle[1], NodeSend { dim: 1, elems: 10.0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn schedule_rejects_bad_dimension() {
        let stage = CommStage::spmd(2, vec![NodeSend { dim: 5, elems: 1.0 }]);
        let _ = CommSchedule::new(2, vec![stage]);
    }

    #[test]
    fn q1_pipelined_equals_unpipelined() {
        let cc = CcCube::exchange_phase(OrderingFamily::PermutedBr, 4, 44.0);
        assert_eq!(pipelined_phase_schedule(4, &cc, 1), unpipelined_phase_schedule(4, &cc));
    }

    #[test]
    fn spmd_stage_stores_the_bundle_once() {
        // The 2^d nodes share one allocation; equality still sees through
        // the representation.
        let bundle = vec![NodeSend { dim: 0, elems: 3.0 }, NodeSend { dim: 1, elems: 4.0 }];
        let spmd = CommStage::spmd(3, bundle.clone());
        match &spmd {
            CommStage::Spmd { nodes, bundle: shared } => {
                assert_eq!(*nodes, 8);
                assert_eq!(Arc::strong_count(shared), 1);
            }
            CommStage::PerNode { .. } => panic!("spmd() must build the shared representation"),
        }
        for n in 0..8 {
            assert_eq!(spmd.sends(n), &bundle[..]);
        }
        assert_eq!(spmd.message_count(), 16);
        assert_eq!(spmd.volume(), 8.0 * 7.0);
        let explicit = CommStage::per_node(vec![bundle; 8]);
        assert_eq!(spmd, explicit, "representation must not affect equality");
    }

    #[test]
    fn volume_by_dim_accumulates_across_stages() {
        let s = CommSchedule::new(
            2,
            vec![
                CommStage::spmd(2, vec![NodeSend { dim: 0, elems: 5.0 }]),
                CommStage::per_node(vec![
                    vec![NodeSend { dim: 1, elems: 2.0 }],
                    vec![],
                    vec![NodeSend { dim: 0, elems: 1.0 }],
                    vec![],
                ]),
            ],
        );
        assert_eq!(s.volume_by_dim(), vec![4.0 * 5.0 + 1.0, 2.0]);
    }
}
