//! Communication schedules: what every node sends at every stage.
//!
//! The simulator consumes a list of [`CommStage`]s. Within a stage each
//! node issues a set of messages to neighbors (one per hypercube dimension
//! at most — messages sharing a link have already been combined, as the
//! paper prescribes). The builders produce the two schedule shapes the
//! Jacobi algorithms generate: the unpipelined sweep (one block message per
//! transition) and the pipelined exchange phase (windowed packet bundles).

use mph_ccpipe::{pipelined_schedule, CcCube};

/// One message: `elems` data elements across dimension `dim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSend {
    pub dim: usize,
    pub elems: f64,
}

/// One synchronized communication stage.
///
/// `sends[n]` lists node `n`'s outgoing messages, in issue order. In the
/// SPMD algorithms of the paper all nodes send the same bundle, but the
/// simulator accepts arbitrary per-node lists.
#[derive(Debug, Clone, PartialEq)]
pub struct CommStage {
    pub sends: Vec<Vec<NodeSend>>,
}

impl CommStage {
    /// An SPMD stage: every one of the `2^d` nodes sends `bundle`.
    pub fn spmd(d: usize, bundle: Vec<NodeSend>) -> Self {
        CommStage { sends: vec![bundle; 1 << d] }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.sends.len()
    }

    /// Total messages in the stage.
    pub fn message_count(&self) -> usize {
        self.sends.iter().map(|s| s.len()).sum()
    }

    /// Total element volume in the stage.
    pub fn volume(&self) -> f64 {
        self.sends.iter().flatten().map(|m| m.elems).sum()
    }
}

/// A full schedule plus the cube dimension it runs on.
#[derive(Debug, Clone, PartialEq)]
pub struct CommSchedule {
    pub d: usize,
    pub stages: Vec<CommStage>,
}

impl CommSchedule {
    pub fn new(d: usize, stages: Vec<CommStage>) -> Self {
        for st in &stages {
            assert_eq!(st.nodes(), 1 << d, "stage node count must be 2^d");
            for sends in &st.sends {
                for s in sends {
                    assert!(s.dim < d, "dimension {} out of range", s.dim);
                    assert!(s.elems >= 0.0);
                }
            }
        }
        CommSchedule { d, stages }
    }

    pub fn message_count(&self) -> usize {
        self.stages.iter().map(|s| s.message_count()).sum()
    }

    pub fn volume(&self) -> f64 {
        self.stages.iter().map(|s| s.volume()).sum()
    }
}

/// The unpipelined exchange phase: each transition is one stage in which
/// every node sends the whole block (`cc.message_elems`) across the
/// transition's link.
pub fn unpipelined_phase_schedule(d: usize, cc: &CcCube) -> CommSchedule {
    let stages = cc
        .link_seq
        .iter()
        .map(|&dim| CommStage::spmd(d, vec![NodeSend { dim, elems: cc.message_elems }]))
        .collect();
    CommSchedule::new(d, stages)
}

/// The pipelined exchange phase with degree `q`: stage `s` sends, for every
/// distinct link of the window, one combined message of
/// `multiplicity × (elems/q)` elements. Issue order follows first
/// appearance in the window (the paper's `a-b-c` notation order).
pub fn pipelined_phase_schedule(d: usize, cc: &CcCube, q: usize) -> CommSchedule {
    let sched = pipelined_schedule(cc, q);
    let s_elems = cc.message_elems / q as f64;
    let stages = sched
        .stages
        .iter()
        .map(|st| {
            let window = &cc.link_seq[st.lo..=st.hi];
            let mut order: Vec<usize> = Vec::new();
            let mut mult = vec![0usize; d];
            for &l in window {
                if mult[l] == 0 {
                    order.push(l);
                }
                mult[l] += 1;
            }
            let bundle = order
                .into_iter()
                .map(|dim| NodeSend { dim, elems: mult[dim] as f64 * s_elems })
                .collect();
            CommStage::spmd(d, bundle)
        })
        .collect();
    CommSchedule::new(d, stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_core::OrderingFamily;

    #[test]
    fn unpipelined_schedule_shape() {
        let cc = CcCube::exchange_phase(OrderingFamily::Br, 3, 64.0);
        let s = unpipelined_phase_schedule(3, &cc);
        assert_eq!(s.stages.len(), 7);
        assert_eq!(s.message_count(), 7 * 8);
        assert_eq!(s.volume(), 7.0 * 8.0 * 64.0);
    }

    #[test]
    fn pipelined_schedule_conserves_volume() {
        let cc = CcCube::exchange_phase(OrderingFamily::Degree4, 4, 120.0);
        for q in [1usize, 2, 4, 8, 15, 30] {
            let s = pipelined_phase_schedule(4, &cc, q);
            // Every packet of every iteration crosses the network once:
            // volume = K · elems per node.
            let expect = 15.0 * 120.0 * 16.0;
            assert!((s.volume() - expect).abs() < 1e-6, "q={q}: {}", s.volume());
        }
    }

    #[test]
    fn pipelined_stage_combines_repeated_links() {
        // BR window <0,1,0> must become messages 0:2·S, 1:1·S.
        let cc = CcCube::exchange_phase(OrderingFamily::Br, 3, 30.0);
        let s = pipelined_phase_schedule(3, &cc, 3);
        // Stage 2 (first kernel stage) has window 0,1,0.
        let bundle = &s.stages[2].sends[0];
        assert_eq!(bundle.len(), 2);
        assert_eq!(bundle[0], NodeSend { dim: 0, elems: 20.0 });
        assert_eq!(bundle[1], NodeSend { dim: 1, elems: 10.0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn schedule_rejects_bad_dimension() {
        let stage = CommStage::spmd(2, vec![NodeSend { dim: 5, elems: 1.0 }]);
        let _ = CommSchedule::new(2, vec![stage]);
    }

    #[test]
    fn q1_pipelined_equals_unpipelined() {
        let cc = CcCube::exchange_phase(OrderingFamily::PermutedBr, 4, 44.0);
        assert_eq!(pipelined_phase_schedule(4, &cc, 1), unpipelined_phase_schedule(4, &cc));
    }
}
