//! Virtual-time simulator of a multi-port hypercube multicomputer.
//!
//! The paper evaluates its orderings on an analytic model of a multi-port
//! hypercube (start-up `Ts` per message, `Tw` per element, per-node port
//! configuration). No such machine exists to run on, so this crate is the
//! executable substitute: it takes the *actual communication schedules* the
//! Jacobi algorithms generate — unpipelined sweeps or pipelined exchange
//! phases — and plays them through a machine with exactly the paper's
//! semantics, reporting makespans, per-stage spans and per-dimension link
//! utilization.
//!
//! Two results make it more than a calculator:
//!
//! * with barrier-synchronized stages and serialized start-ups the
//!   simulated makespan equals the closed-form phase cost *exactly* (this
//!   is asserted in tests and measured in the `validate_simnet`
//!   experiment), grounding the analytic models used for Figure 2;
//! * relaxations the closed form cannot express — overlapped start-ups
//!   ([`StartupModel::Overlapped`]) and barrier-free dependency-driven
//!   execution ([`simulate_async`]) — quantify how conservative the
//!   paper's model is.

pub mod batch;
pub mod plan;
pub mod schedule;
pub mod sim;
pub mod sweepsim;
pub mod validate;

pub use batch::{interleaved_replay, job_schedule, serial_replay};
pub use plan::{
    plan_phase_times, plan_phase_times_hetero, plan_pipelined_schedule,
    plan_pipelined_schedule_with_tail, plan_unpipelined_schedule,
};
pub use schedule::{
    pipelined_phase_schedule, unpipelined_phase_schedule, CommSchedule, CommStage, NodeSend,
};
pub use sim::{simulate_async, simulate_synchronized, SimReport, StartupModel};
pub use sweepsim::{pipelined_sweep_schedule, simulate_sweep, unpipelined_sweep_schedule};
pub use validate::{validate_phase, ValidationSample};
