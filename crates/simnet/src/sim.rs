//! The virtual-time network simulator.
//!
//! Two execution semantics are provided:
//!
//! * [`simulate_synchronized`] — a barrier separates stages: stage `s+1`
//!   starts when every node has finished sending *and* receiving stage `s`.
//!   This is the semantics the analytic cost models price.
//! * [`simulate_async`] — no barriers: a node starts its stage `s` as soon
//!   as its own CPU is free and every packet it needs from stage `s−1`
//!   (those of its stage-`s−1` partners) has arrived. For the paper's SPMD
//!   schedules (every node sends the same bundle) this coincides with the
//!   synchronized semantics; for irregular schedules it is faster.
//!
//! Within a stage, a node's behaviour follows the machine model:
//! start-ups are issued serially by the CPU (`Ts` each), then transmissions
//! occupy ports according to [`PortModel`]. Two start-up/transmission
//! interleavings are supported (see [`StartupModel`]): the closed-form one
//! used by the paper's model, and an overlapped one that lets early
//! transmissions begin while later start-ups are still being issued — the
//! gap between them is measured by the `validate_simnet` experiment.

use crate::schedule::{CommSchedule, NodeSend};
use mph_ccpipe::{Machine, PortModel};

/// How start-up issue and transmission overlap within one node's stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartupModel {
    /// All start-ups complete before any transmission begins: a stage with
    /// `n` messages costs exactly `n·Ts + makespan(tx)` — the paper's
    /// closed-form model.
    SerializedThenParallel,
    /// Message `i`'s transmission may begin as soon as its own start-up
    /// completes (at `(i+1)·Ts`), overlapping later start-ups. Never slower
    /// than the closed form.
    Overlapped,
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total virtual time from first stage start to last completion.
    pub makespan: f64,
    /// Per-stage `(start, end)` (synchronized mode) or per-stage completion
    /// envelope (async mode: min start, max end).
    pub stage_spans: Vec<(f64, f64)>,
    /// Busy time accumulated per dimension (transmissions, both directions).
    pub dim_busy: Vec<f64>,
    /// Total messages.
    pub messages: usize,
    /// Total element volume.
    pub volume: f64,
}

impl SimReport {
    /// Utilization of dimension `dim`: busy time / (makespan × 2^d links in
    /// that dimension × 2 directions), i.e. the mean fraction of time the
    /// dimension's wires carry data.
    pub fn dim_utilization(&self, dim: usize, d: usize) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        self.dim_busy[dim] / (self.makespan * (1u64 << d) as f64)
    }
}

/// Completion time of one node's sends within a stage starting at `t0`,
/// also accumulating per-dimension busy time.
fn node_stage_completion(
    sends: &[NodeSend],
    machine: &Machine,
    startup: StartupModel,
    t0: f64,
    dim_busy: &mut [f64],
) -> f64 {
    if sends.is_empty() {
        return t0;
    }
    let ts = machine.ts;
    let tw = machine.tw;
    let n = sends.len() as f64;
    for s in sends {
        dim_busy[s.dim] += s.elems * tw;
    }
    match machine.ports {
        PortModel::AllPort => match startup {
            StartupModel::SerializedThenParallel => {
                let tx_max = sends.iter().map(|s| s.elems * tw).fold(0.0f64, f64::max);
                t0 + n * ts + tx_max
            }
            StartupModel::Overlapped => sends
                .iter()
                .enumerate()
                .map(|(i, s)| t0 + (i as f64 + 1.0) * ts + s.elems * tw)
                .fold(0.0f64, f64::max),
        },
        PortModel::OnePort => {
            // Single port: start-up, transmit, repeat.
            let mut t = t0;
            for s in sends {
                t += ts + s.elems * tw;
            }
            t
        }
        PortModel::KPort(k) => {
            let k = k.max(1);
            let mut engines = vec![t0; k];
            let mut t_cpu = t0;
            let mut done = t0;
            for s in sends {
                t_cpu += ts;
                let issue = match startup {
                    StartupModel::SerializedThenParallel => t0 + n * ts,
                    StartupModel::Overlapped => t_cpu,
                };
                // Earliest-available engine.
                let idx = (0..k).min_by(|&a, &b| engines[a].total_cmp(&engines[b])).unwrap();
                let start = engines[idx].max(issue);
                engines[idx] = start + s.elems * tw;
                done = done.max(engines[idx]);
            }
            done.max(t_cpu)
        }
    }
}

/// Barrier-synchronized execution.
pub fn simulate_synchronized(
    schedule: &CommSchedule,
    machine: &Machine,
    startup: StartupModel,
) -> SimReport {
    let d = schedule.d;
    let mut dim_busy = vec![0.0; d.max(1)];
    let mut t = 0.0;
    let mut stage_spans = Vec::with_capacity(schedule.stages.len());
    for stage in &schedule.stages {
        let start = t;
        let mut end = t;
        for sends in stage.iter() {
            let c = node_stage_completion(sends, machine, startup, start, &mut dim_busy);
            end = end.max(c);
        }
        stage_spans.push((start, end));
        t = end;
    }
    SimReport {
        makespan: t,
        stage_spans,
        dim_busy,
        messages: schedule.message_count(),
        volume: schedule.volume(),
    }
}

/// Barrier-free execution: node `n` may start stage `s` once it has
/// finished its own stage `s−1` and the stage-`s−1` transmissions *to* `n`
/// have arrived.
pub fn simulate_async(
    schedule: &CommSchedule,
    machine: &Machine,
    startup: StartupModel,
) -> SimReport {
    let d = schedule.d;
    let p = 1usize << d;
    let mut dim_busy = vec![0.0; d.max(1)];
    // ready[n]: when node n may begin its next stage.
    let mut ready = vec![0.0f64; p];
    let mut stage_spans = Vec::with_capacity(schedule.stages.len());
    let mut makespan = 0.0f64;
    for stage in &schedule.stages {
        let mut completion = vec![0.0f64; p];
        let mut span = (f64::INFINITY, 0.0f64);
        for n in 0..p {
            let t0 = ready[n];
            let c = node_stage_completion(stage.sends(n), machine, startup, t0, &mut dim_busy);
            completion[n] = c;
            span.0 = span.0.min(t0);
            span.1 = span.1.max(c);
            makespan = makespan.max(c);
        }
        // Next-stage readiness: own completion plus arrivals from partners.
        let mut next_ready = completion.clone();
        for n in 0..p {
            for s in stage.sends(n) {
                let partner = n ^ (1 << s.dim);
                // The data this node sent arrives at `partner` when the
                // node's stage completes (per-message completion would be
                // tighter; stage completion is a safe, simple bound).
                next_ready[partner] = next_ready[partner].max(completion[n]);
            }
        }
        ready = next_ready;
        if span.0.is_infinite() {
            span.0 = 0.0;
        }
        stage_spans.push(span);
    }
    SimReport {
        makespan,
        stage_spans,
        dim_busy,
        messages: schedule.message_count(),
        volume: schedule.volume(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{pipelined_phase_schedule, unpipelined_phase_schedule, CommStage};
    use mph_ccpipe::CcCube;
    use mph_core::OrderingFamily;

    fn machine() -> Machine {
        Machine::paper_figure2()
    }

    #[test]
    fn single_stage_single_message() {
        let sched =
            CommSchedule::new(2, vec![CommStage::spmd(2, vec![NodeSend { dim: 0, elems: 10.0 }])]);
        let r = simulate_synchronized(&sched, &machine(), StartupModel::SerializedThenParallel);
        assert_eq!(r.makespan, 1000.0 + 10.0 * 100.0);
        assert_eq!(r.messages, 4);
    }

    #[test]
    fn unpipelined_phase_matches_closed_form() {
        let cc = CcCube::exchange_phase(OrderingFamily::Br, 4, 500.0);
        let sched = unpipelined_phase_schedule(4, &cc);
        let r = simulate_synchronized(&sched, &machine(), StartupModel::SerializedThenParallel);
        let expect = 15.0 * (1000.0 + 500.0 * 100.0);
        assert!((r.makespan - expect).abs() < 1e-9);
    }

    #[test]
    fn pipelined_phase_matches_analytic_cost_model() {
        // The synchronized simulator with serialized start-ups must price a
        // pipelined phase exactly like PhaseCostModel.
        let m = machine();
        for family in [OrderingFamily::Br, OrderingFamily::PermutedBr, OrderingFamily::Degree4] {
            for e in [4usize, 5] {
                let cc = CcCube::exchange_phase(family, e, 320.0);
                let model = mph_ccpipe::PhaseCostModel::new(&cc, m);
                for q in [1usize, 2, 4, 8, 16, 40] {
                    let sched = pipelined_phase_schedule(e, &cc, q);
                    let r = simulate_synchronized(&sched, &m, StartupModel::SerializedThenParallel);
                    let want = model.cost(q);
                    assert!(
                        (r.makespan - want).abs() < 1e-6 * want,
                        "{family} e={e} q={q}: sim {} vs model {want}",
                        r.makespan
                    );
                }
            }
        }
    }

    #[test]
    fn overlapped_startups_never_slower() {
        let cc = CcCube::exchange_phase(OrderingFamily::Degree4, 5, 320.0);
        let m = machine();
        for q in [1usize, 4, 16, 62] {
            let sched = pipelined_phase_schedule(5, &cc, q);
            let strict = simulate_synchronized(&sched, &m, StartupModel::SerializedThenParallel);
            let relaxed = simulate_synchronized(&sched, &m, StartupModel::Overlapped);
            assert!(
                relaxed.makespan <= strict.makespan + 1e-9,
                "q={q}: {} > {}",
                relaxed.makespan,
                strict.makespan
            );
        }
    }

    #[test]
    fn async_equals_sync_for_spmd_schedules() {
        let cc = CcCube::exchange_phase(OrderingFamily::PermutedBr, 4, 77.0);
        let m = machine();
        for q in [1usize, 3, 9] {
            let sched = pipelined_phase_schedule(4, &cc, q);
            let sync = simulate_synchronized(&sched, &m, StartupModel::SerializedThenParallel);
            let asy = simulate_async(&sched, &m, StartupModel::SerializedThenParallel);
            assert!(
                (sync.makespan - asy.makespan).abs() < 1e-9,
                "q={q}: sync {} vs async {}",
                sync.makespan,
                asy.makespan
            );
        }
    }

    #[test]
    fn async_beats_sync_for_irregular_schedules() {
        // Node 0 is busy in stage 0; the others idle. In stage 1 only node
        // 3 sends (to node 2). Node 3 need not wait for node 0's stage-0
        // completion in async mode.
        let d = 2;
        let heavy = vec![NodeSend { dim: 0, elems: 1000.0 }];
        let idle: Vec<NodeSend> = vec![];
        let light = vec![NodeSend { dim: 0, elems: 1.0 }];
        let stage0 = CommStage::per_node(vec![heavy, idle.clone(), idle.clone(), light.clone()]);
        let stage1 = CommStage::per_node(vec![idle.clone(), idle.clone(), idle.clone(), light]);
        let sched = CommSchedule::new(d, vec![stage0, stage1]);
        let m = machine();
        let sync = simulate_synchronized(&sched, &m, StartupModel::SerializedThenParallel);
        let asy = simulate_async(&sched, &m, StartupModel::SerializedThenParallel);
        assert!(asy.makespan < sync.makespan, "async {} sync {}", asy.makespan, sync.makespan);
    }

    #[test]
    fn one_port_simulation_serializes() {
        let m = Machine::one_port(10.0, 1.0);
        let bundle = vec![NodeSend { dim: 0, elems: 5.0 }, NodeSend { dim: 1, elems: 7.0 }];
        let sched = CommSchedule::new(2, vec![CommStage::spmd(2, bundle)]);
        let r = simulate_synchronized(&sched, &m, StartupModel::Overlapped);
        assert_eq!(r.makespan, (10.0 + 5.0) + (10.0 + 7.0));
    }

    #[test]
    fn dim_busy_accounts_all_traffic() {
        let cc = CcCube::exchange_phase(OrderingFamily::Br, 3, 10.0);
        let sched = unpipelined_phase_schedule(3, &cc);
        let m = machine();
        let r = simulate_synchronized(&sched, &m, StartupModel::SerializedThenParallel);
        // BR e=3 = <0102010>: 4 transitions on dim 0, 2 on dim 1, 1 on dim 2,
        // each 8 nodes × 10 elems × Tw.
        assert_eq!(r.dim_busy[0], 4.0 * 8.0 * 10.0 * 100.0);
        assert_eq!(r.dim_busy[1], 2.0 * 8.0 * 10.0 * 100.0);
        assert_eq!(r.dim_busy[2], 1.0 * 8.0 * 10.0 * 100.0);
    }

    #[test]
    fn balanced_sequences_spread_utilization() {
        // Permuted-BR should load dimensions far more evenly than BR.
        let m = machine();
        let e = 8;
        let busy = |family: OrderingFamily| {
            let cc = CcCube::exchange_phase(family, e, 10.0);
            let sched = unpipelined_phase_schedule(e, &cc);
            simulate_synchronized(&sched, &m, StartupModel::SerializedThenParallel).dim_busy
        };
        // Spread = busiest dimension / mean. (The top dimension e−1 always
        // carries exactly one transition in BR-derived sequences, so
        // max/min is uninformative; max/mean is the balance that matters
        // for deep pipelining.)
        let spread = |b: &[f64]| {
            let max = b.iter().fold(0.0f64, |a, &x| a.max(x));
            let mean = b.iter().sum::<f64>() / b.len() as f64;
            max / mean
        };
        let br = busy(OrderingFamily::Br);
        let pbr = busy(OrderingFamily::PermutedBr);
        assert!(spread(&br) > 3.5, "BR spread {}", spread(&br));
        assert!(spread(&pbr) < 1.6, "pBR spread {}", spread(&pbr));
    }
}
