//! Whole-sweep simulation: compose a sweep's communication — pipelined
//! exchange phases plus serial division/last transitions — into one
//! schedule and play it through the simulator. Under the strict start-up
//! semantics the makespan must equal `mph-ccpipe`'s sweep cost exactly,
//! which closes the loop between the Figure-2 analytic pipeline and an
//! executable machine model at full-sweep granularity.

use crate::schedule::{pipelined_phase_schedule, CommSchedule, CommStage, NodeSend};
use crate::sim::{simulate_synchronized, SimReport, StartupModel};
use mph_ccpipe::{optimize_q, CcCube, Machine, PhaseCostModel, Workload};
use mph_core::{OrderingFamily, SweepSchedule};

/// Builds the unpipelined sweep schedule: one stage per transition, every
/// node sending the whole block across the transition's link.
pub fn unpipelined_sweep_schedule(family: OrderingFamily, w: &Workload) -> CommSchedule {
    let d = w.d;
    let elems = w.elems_per_transfer();
    let sweep = SweepSchedule::first_sweep(d, family);
    let stages = sweep
        .transitions()
        .iter()
        .map(|t| CommStage::spmd(d, vec![NodeSend { dim: t.link, elems }]))
        .collect();
    CommSchedule::new(d, stages)
}

/// Builds the pipelined sweep schedule with per-phase optimal `Q` (the
/// same optimization the analytic sweep cost performs): exchange phases
/// become their pipelined stage schedules; division and last transitions
/// stay single whole-block stages. Returns the schedule and the chosen
/// `Q` per exchange phase (e = d..1).
pub fn pipelined_sweep_schedule(
    family: OrderingFamily,
    w: &Workload,
    machine: &Machine,
) -> (CommSchedule, Vec<(usize, usize)>) {
    let d = w.d;
    let elems = w.elems_per_transfer();
    let q_max = w.max_pipelining_degree();
    let mut stages: Vec<CommStage> = Vec::new();
    let mut chosen = Vec::with_capacity(d);
    for e in (1..=d).rev() {
        let cc = CcCube::exchange_phase(family, e, elems);
        let model = PhaseCostModel::new(&cc, *machine);
        let opt = optimize_q(&model, q_max);
        chosen.push((e, opt.q));
        let phase = pipelined_phase_schedule(d, &cc, opt.q);
        stages.extend(phase.stages);
        // Division transition after phase e (link e−1).
        stages.push(CommStage::spmd(d, vec![NodeSend { dim: e - 1, elems }]));
    }
    if d >= 1 {
        // Last transition (link d−1).
        stages.push(CommStage::spmd(d, vec![NodeSend { dim: d - 1, elems }]));
    }
    (CommSchedule::new(d, stages), chosen)
}

/// Simulates one full sweep (strict semantics) and returns the report.
pub fn simulate_sweep(schedule: &CommSchedule, machine: &Machine) -> SimReport {
    simulate_synchronized(schedule, machine, StartupModel::SerializedThenParallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_ccpipe::{pipelined_sweep_cost, unpipelined_sweep_cost};

    #[test]
    fn unpipelined_sweep_simulation_matches_model() {
        let machine = Machine::paper_figure2();
        for d in [2usize, 3, 4] {
            let w = Workload::new(256.0, d);
            for family in OrderingFamily::ALL {
                let sched = unpipelined_sweep_schedule(family, &w);
                let sim = simulate_sweep(&sched, &machine);
                let want = unpipelined_sweep_cost(&w, &machine);
                assert!(
                    (sim.makespan - want).abs() < 1e-9 * want,
                    "{family} d={d}: sim {} vs model {want}",
                    sim.makespan
                );
            }
        }
    }

    #[test]
    fn pipelined_sweep_simulation_matches_model() {
        let machine = Machine::paper_figure2();
        for d in [2usize, 3, 4] {
            let w = Workload::new(512.0, d);
            for family in OrderingFamily::ALL {
                let (sched, _) = pipelined_sweep_schedule(family, &w, &machine);
                let sim = simulate_sweep(&sched, &machine);
                let want = pipelined_sweep_cost(family, &w, &machine).total;
                assert!(
                    (sim.makespan - want).abs() < 1e-6 * want,
                    "{family} d={d}: sim {} vs model {want}",
                    sim.makespan
                );
            }
        }
    }

    #[test]
    fn pipelined_sweep_beats_unpipelined_in_simulation() {
        // The Figure-2 verdict, observed on the executable machine rather
        // than the closed form.
        let machine = Machine::paper_figure2();
        let w = Workload::new(4096.0, 3);
        for family in [OrderingFamily::PermutedBr, OrderingFamily::Degree4] {
            let base = simulate_sweep(&unpipelined_sweep_schedule(family, &w), &machine);
            let (sched, _) = pipelined_sweep_schedule(family, &w, &machine);
            let piped = simulate_sweep(&sched, &machine);
            assert!(
                piped.makespan < 0.8 * base.makespan,
                "{family}: {} vs {}",
                piped.makespan,
                base.makespan
            );
        }
    }

    #[test]
    fn chosen_q_respects_the_column_cap() {
        let machine = Machine::paper_figure2();
        let w = Workload::new(256.0, 3); // 16 column pairs per block
        let (_, chosen) = pipelined_sweep_schedule(OrderingFamily::Degree4, &w, &machine);
        for (e, q) in chosen {
            assert!(q as f64 <= w.max_pipelining_degree(), "phase {e}: q={q}");
        }
    }

    #[test]
    fn sweep_volume_is_family_invariant() {
        // Every family moves the same data volume — only the link pattern
        // differs.
        let machine = Machine::paper_figure2();
        let w = Workload::new(128.0, 3);
        let mut volumes = Vec::new();
        for family in OrderingFamily::ALL {
            let (sched, _) = pipelined_sweep_schedule(family, &w, &machine);
            volumes.push(simulate_sweep(&sched, &machine).volume);
        }
        for v in &volumes {
            assert!((v - volumes[0]).abs() < 1e-6, "{volumes:?}");
        }
    }
}
