//! Lowering a [`CommPlan`] to a simulator schedule — the simulation view
//! of the one communication description the whole workspace shares.
//!
//! The plan already carries exact per-node message sizes for every
//! transition; this module turns it into [`CommStage`]s:
//!
//! * [`plan_unpipelined_schedule`] — one stage per transition, every node
//!   sending its block whole;
//! * [`plan_pipelined_schedule`] — each exchange phase becomes its
//!   prologue/kernel/epilogue stage schedule for the chosen degree `Q`
//!   (one entry of `qs` per exchange phase); division and last
//!   transitions stay single whole-block stages.
//!
//! Packet sizes are tracked exactly: each node's block is split into `Q`
//! balanced column packets, and as packets hop along the phase's link path
//! their (possibly unequal) sizes travel with them — so even for matrix
//! sizes that don't divide evenly, the simulated traffic is element-exact
//! against the threaded runtime's meter. Message *counts* differ by
//! design: the simulator combines the packets a stage sends through one
//! link into a single message (the paper's combining assumption), while
//! the runtime sends each packet separately.

use crate::schedule::{CommSchedule, CommStage, NodeSend};
use crate::sim::{simulate_synchronized, StartupModel};
use mph_ccpipe::Machine;
use mph_core::{BlockPartition, CommPlan, PlanPhase};

/// One stage per transition; node `n` sends exactly the plan's
/// `sends[t][n]` elements across the transition's link.
pub fn plan_unpipelined_schedule(plan: &CommPlan) -> CommSchedule {
    let stages = plan
        .phases()
        .iter()
        .flat_map(|ph| {
            ph.links.iter().zip(&ph.sends).map(|(&dim, sends)| {
                per_node_stage(sends.iter().map(|&e| vec![(dim, e as f64)]).collect())
            })
        })
        .collect();
    CommSchedule::new(plan.d(), stages)
}

/// Pipelined lowering: exchange phase `i` is packetized into `qs[i]`
/// packets (`qs` has one entry per exchange phase, in execution order);
/// serial phases stay whole-block stages.
pub fn plan_pipelined_schedule(plan: &CommPlan, qs: &[usize]) -> CommSchedule {
    assert_eq!(
        qs.len(),
        plan.exchange_phases().count(),
        "one pipelining degree per exchange phase"
    );
    let mut stages = Vec::new();
    let mut xq = 0usize;
    for ph in plan.phases() {
        if ph.is_exchange() {
            let q = qs[xq].max(1);
            xq += 1;
            stages.extend(pipelined_phase_stages(plan, ph, q));
        } else {
            let dim = ph.links[0];
            stages
                .push(per_node_stage(ph.sends[0].iter().map(|&e| vec![(dim, e as f64)]).collect()));
        }
    }
    CommSchedule::new(plan.d(), stages)
}

/// Simulated makespan of every phase of `plan` separately, in execution
/// order: exchange phase `i` is packetized into `qs[i]` packets, serial
/// phases are one whole-block stage, and each phase is played through the
/// barrier-synchronized simulator on `machine`.
///
/// This is the simulator-side reference for cross-validating the
/// *throttled-measured* phase times of the runtime's link fabric
/// (`mph_runtime::fabric`) against the simulated ones: all three layers —
/// cost model, simulator, throttled runtime — price the same lowered plan.
pub fn plan_phase_times(
    plan: &CommPlan,
    machine: &Machine,
    qs: &[usize],
    startup: StartupModel,
) -> Vec<f64> {
    assert_eq!(
        qs.len(),
        plan.exchange_phases().count(),
        "one pipelining degree per exchange phase"
    );
    let mut xq = 0usize;
    plan.phases()
        .iter()
        .map(|ph| {
            let stages = if ph.is_exchange() {
                let q = qs[xq].max(1);
                xq += 1;
                pipelined_phase_stages(plan, ph, q)
            } else {
                let dim = ph.links[0];
                vec![per_node_stage(ph.sends[0].iter().map(|&e| vec![(dim, e as f64)]).collect())]
            };
            simulate_synchronized(&CommSchedule::new(plan.d(), stages), machine, startup).makespan
        })
        .collect()
}

/// [`plan_phase_times`] on a **heterogeneous** fabric: one machine per
/// plan phase, each phase simulated on its own machine — the simulator
/// view of a degraded epoch, cross-validating
/// `mph_ccpipe::plan_cost_hetero` the same way the uniform pair
/// cross-validates. With every entry equal this is exactly
/// [`plan_phase_times`] (asserted in the tests).
pub fn plan_phase_times_hetero(
    plan: &CommPlan,
    machines: &[Machine],
    qs: &[usize],
    startup: StartupModel,
) -> Vec<f64> {
    assert_eq!(machines.len(), plan.phases().len(), "one machine per plan phase");
    assert_eq!(
        qs.len(),
        plan.exchange_phases().count(),
        "one pipelining degree per exchange phase"
    );
    let mut xq = 0usize;
    plan.phases()
        .iter()
        .zip(machines)
        .map(|(ph, machine)| {
            let stages = if ph.is_exchange() {
                let q = qs[xq].max(1);
                xq += 1;
                pipelined_phase_stages(plan, ph, q)
            } else {
                let dim = ph.links[0];
                vec![per_node_stage(ph.sends[0].iter().map(|&e| vec![(dim, e as f64)]).collect())]
            };
            simulate_synchronized(&CommSchedule::new(plan.d(), stages), machine, startup).makespan
        })
        .collect()
}

/// [`plan_pipelined_schedule`] with a packetized serial tail: each tail
/// run of `plan` (maximal stretch of single-link transitions, see
/// [`CommPlan::tail_runs`]) is lowered as one chained wavefront — the
/// run's `R` transitions play the role of pipeline iterations, each
/// node's per-transition block is split into `tail_q` balanced column
/// packets, and stage `s` ships packet `s − j` of transition `j` — the
/// simulation view of the threaded driver's tail pipeline. In-run K = 1
/// exchange phases ride the run at `tail_q` (their `qs` entry is consumed
/// but overridden, exactly as the runtime does). `tail_q = 1` is the
/// plain [`plan_pipelined_schedule`] lowering.
pub fn plan_pipelined_schedule_with_tail(
    plan: &CommPlan,
    qs: &[usize],
    tail_q: usize,
) -> CommSchedule {
    assert_eq!(
        qs.len(),
        plan.exchange_phases().count(),
        "one pipelining degree per exchange phase"
    );
    if tail_q <= 1 {
        return plan_pipelined_schedule(plan, qs);
    }
    let runs = plan.tail_runs();
    let phases = plan.phases();
    let mut stages = Vec::new();
    let mut xq = 0usize;
    let mut idx = 0usize;
    while idx < phases.len() {
        if let Some(run) = runs.iter().find(|r| r.start == idx) {
            xq += phases[run.clone()].iter().filter(|ph| ph.is_exchange()).count();
            stages.extend(tail_run_stages(plan, run.start..run.end, tail_q));
            idx = run.end;
            continue;
        }
        let ph = &phases[idx];
        idx += 1;
        if ph.is_exchange() {
            let q = qs[xq].max(1);
            xq += 1;
            stages.extend(pipelined_phase_stages(plan, ph, q));
        } else {
            let dim = ph.links[0];
            stages
                .push(per_node_stage(ph.sends[0].iter().map(|&e| vec![(dim, e as f64)]).collect()));
        }
    }
    CommSchedule::new(plan.d(), stages)
}

/// Builds the `R + Q − 1` wavefront stages of one chained tail run:
/// transition `j`'s packet `q` ships at stage `s = j + q`, so while one
/// transition's late packets still occupy its link, the next transition's
/// early packets are already on theirs — same-dimension packets of one
/// stage combine into a single message (the paper's combining assumption;
/// the throttled runtime sends them separately).
fn tail_run_stages(plan: &CommPlan, run: std::ops::Range<usize>, q: usize) -> Vec<CommStage> {
    let p = 1usize << plan.d();
    let epc = plan.elems_per_col() as f64;
    let phases = &plan.phases()[run];
    let r_total = phases.len();
    // Per-transition, per-node packet sizes: the node's whole outgoing
    // block split into q balanced column packets (the runtime's
    // ColumnBlock::split_columns). Sizes are per transition — a division
    // swaps which slot travels, and the plan's sends already price that.
    let pkt: Vec<Vec<Vec<f64>>> = phases
        .iter()
        .map(|ph| {
            (0..p)
                .map(|n| {
                    let cols = ph.sends[0][n] as usize / plan.elems_per_col();
                    let split = BlockPartition::new(cols, q);
                    (0..q).map(|j| split.size(j) as f64 * epc).collect()
                })
                .collect()
        })
        .collect();
    let mut stages = Vec::with_capacity(r_total + q - 1);
    for s in 0..(r_total + q - 1) {
        let lo = s.saturating_sub(q - 1);
        let hi = s.min(r_total - 1);
        let sends: Vec<Vec<(usize, f64)>> = (0..p)
            .map(|n| {
                let mut bundle: Vec<(usize, f64)> = Vec::new();
                for j in lo..=hi {
                    let dim = phases[j].links[0];
                    let elems = pkt[j][n][s - j];
                    match bundle.iter_mut().find(|(d2, _)| *d2 == dim) {
                        Some((_, e)) => *e += elems,
                        None => bundle.push((dim, elems)),
                    }
                }
                bundle
            })
            .collect();
        stages.push(per_node_stage(sends));
    }
    stages
}

/// Builds the `K + Q − 1` stages of one packetized exchange phase,
/// tracking per-packet sizes as they travel the link path.
fn pipelined_phase_stages(plan: &CommPlan, ph: &PlanPhase, q: usize) -> Vec<CommStage> {
    let p = 1usize << plan.d();
    let epc = plan.elems_per_col() as f64;
    let k_total = ph.k();
    // Initial packet sizes: node n's phase-entry block, split into q
    // balanced column packets (the runtime's ColumnBlock::split_columns).
    let mut pkt: Vec<Vec<f64>> = (0..p)
        .map(|n| {
            let cols = ph.sends[0][n] as usize / plan.elems_per_col();
            let split = BlockPartition::new(cols, q);
            (0..q).map(|j| split.size(j) as f64 * epc).collect()
        })
        .collect();
    let mut stages = Vec::with_capacity(k_total + q - 1);
    for s in 0..(k_total + q - 1) {
        let lo = s.saturating_sub(q - 1);
        let hi = s.min(k_total - 1);
        // Sends: iteration k's packet q' = s − k goes through links[k];
        // same-link packets of one stage combine into one message, in
        // first-appearance (k ascending) order.
        let sends: Vec<Vec<(usize, f64)>> = (0..p)
            .map(|n| {
                let mut bundle: Vec<(usize, f64)> = Vec::new();
                for k in lo..=hi {
                    let dim = ph.links[k];
                    let elems = pkt[n][s - k];
                    match bundle.iter_mut().find(|(d, _)| *d == dim) {
                        Some((_, e)) => *e += elems,
                        None => bundle.push((dim, elems)),
                    }
                }
                bundle
            })
            .collect();
        stages.push(per_node_stage(sends));
        // The stage's packets hop: swap each (k, s − k) packet across
        // links[k]. Distinct k ⇒ distinct packet slots, so swap order
        // within the stage does not matter.
        for k in lo..=hi {
            let mask = 1usize << ph.links[k];
            let j = s - k;
            for n in 0..p {
                if n & mask == 0 {
                    let partner = n | mask;
                    let tmp = pkt[n][j];
                    pkt[n][j] = pkt[partner][j];
                    pkt[partner][j] = tmp;
                }
            }
        }
    }
    stages
}

/// Helper: a per-node stage from `(dim, elems)` bundles, collapsing to the
/// shared SPMD representation when every node sends the same bundle.
fn per_node_stage(bundles: Vec<Vec<(usize, f64)>>) -> CommStage {
    let to_sends = |b: &[(usize, f64)]| -> Vec<NodeSend> {
        b.iter().map(|&(dim, elems)| NodeSend { dim, elems }).collect()
    };
    let uniform = bundles.windows(2).all(|w| w[0] == w[1]);
    if uniform && bundles.len().is_power_of_two() {
        let d = bundles.len().trailing_zeros() as usize;
        CommStage::spmd(d, to_sends(&bundles[0]))
    } else {
        CommStage::per_node(bundles.iter().map(|b| to_sends(b)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{pipelined_phase_schedule, unpipelined_phase_schedule};
    use crate::sim::{simulate_synchronized, StartupModel};
    use mph_ccpipe::{CcCube, Machine};
    use mph_core::{BlockLayout, OrderingFamily, SweepSchedule};

    fn lower(m: usize, d: usize, family: OrderingFamily, sweep: usize) -> CommPlan {
        let schedule = SweepSchedule::sweep(d, family, sweep);
        let partition = BlockPartition::new(m, 2 << d);
        CommPlan::lower(&schedule, &partition, &BlockLayout::canonical(d), 2 * m)
    }

    #[test]
    fn uniform_hetero_phase_times_match_the_uniform_simulator_bit_for_bit() {
        let machine = Machine::all_port(500.0, 10.0);
        let plan = lower(32, 2, OrderingFamily::Degree4, 0);
        let qs: Vec<usize> = plan.exchange_phases().map(|_| 2).collect();
        let machines = vec![machine; plan.phases().len()];
        let uniform = plan_phase_times(&plan, &machine, &qs, StartupModel::SerializedThenParallel);
        let hetero =
            plan_phase_times_hetero(&plan, &machines, &qs, StartupModel::SerializedThenParallel);
        assert_eq!(uniform.len(), hetero.len());
        for (i, (u, h)) in uniform.iter().zip(&hetero).enumerate() {
            assert_eq!(u.to_bits(), h.to_bits(), "phase {i}");
        }
    }

    #[test]
    fn degraded_phases_slow_only_themselves() {
        // Slowing one phase's machine inflates that phase's simulated time
        // and leaves every other phase untouched — the phase decomposition
        // really is per-phase.
        let clean = Machine::all_port(500.0, 10.0);
        let slow = Machine { ts: clean.ts, tw: 8.0 * clean.tw, ports: clean.ports };
        let plan = lower(32, 2, OrderingFamily::Br, 0);
        let qs: Vec<usize> = plan.exchange_phases().map(|_| 1).collect();
        let base = plan_phase_times(&plan, &clean, &qs, StartupModel::SerializedThenParallel);
        let mut machines = vec![clean; plan.phases().len()];
        machines[1] = slow;
        let mixed =
            plan_phase_times_hetero(&plan, &machines, &qs, StartupModel::SerializedThenParallel);
        for (i, (b, m)) in base.iter().zip(&mixed).enumerate() {
            if i == 1 {
                assert!(m > b, "phase 1 must slow down: {m} vs {b}");
            } else {
                assert_eq!(b.to_bits(), m.to_bits(), "phase {i} must be untouched");
            }
        }
    }

    #[test]
    fn unpipelined_plan_schedule_matches_plan_volume() {
        for (m, d) in [(32usize, 2usize), (10, 1), (24, 3)] {
            let plan = lower(m, d, OrderingFamily::Br, 0);
            let sched = plan_unpipelined_schedule(&plan);
            let want: Vec<f64> = plan.volume_by_dim().iter().map(|&v| v as f64).collect();
            assert_eq!(sched.volume_by_dim(), want, "m={m} d={d}");
            assert_eq!(sched.message_count(), ((2 << d) - 1) * (1 << d));
        }
    }

    #[test]
    fn pipelined_plan_schedule_volume_is_q_invariant() {
        // Packetization reframes messages; per-dimension volume must not
        // move — including uneven partitions and oversplit (empty) packets.
        for m in [32usize, 18, 9] {
            let d = 2;
            let plan = lower(m, d, OrderingFamily::Degree4, 0);
            let want: Vec<f64> = plan.volume_by_dim().iter().map(|&v| v as f64).collect();
            for qs in [[1usize, 1], [2, 1], [3, 2], [4, 4], [7, 3]] {
                let sched = plan_pipelined_schedule(&plan, &qs);
                let got = sched.volume_by_dim();
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "m={m} qs={qs:?}: {got:?} vs {want:?}");
                }
            }
        }
    }

    #[test]
    fn uniform_plan_phase_matches_the_continuous_builder() {
        // The continuous CcCube builder splits element counts evenly; the
        // plan lowering splits *columns*. When Q divides the block's
        // column count the two agree stage by stage; otherwise they agree
        // on volume (the column split is what the runtime really ships).
        let m = 64usize;
        let d = 3usize;
        let plan = lower(m, d, OrderingFamily::PermutedBr, 0);
        let first = &plan.phases()[0]; // exchange phase e = 3, 4-col blocks
        let elems = first.uniform_message_elems().unwrap() as f64;
        let cc = CcCube { link_seq: first.links.clone(), message_elems: elems };
        for q in [1usize, 2, 4] {
            let via_cc = pipelined_phase_schedule(d, &cc, q);
            let via_plan = CommSchedule::new(d, pipelined_phase_stages(&plan, first, q));
            assert_eq!(via_plan, via_cc, "q={q}");
        }
        for q in [3usize, 7] {
            let via_cc = pipelined_phase_schedule(d, &cc, q);
            let via_plan = CommSchedule::new(d, pipelined_phase_stages(&plan, first, q));
            assert_eq!(via_plan.stages.len(), via_cc.stages.len(), "q={q}");
            assert!((via_plan.volume() - via_cc.volume()).abs() < 1e-9, "q={q}");
        }
        let unpiped = unpipelined_phase_schedule(d, &cc);
        let via_plan = CommSchedule::new(d, pipelined_phase_stages(&plan, first, 1));
        assert_eq!(via_plan, unpiped);
    }

    #[test]
    fn pipelined_plan_simulates_cheaper_than_unpipelined() {
        // The Figure-2 verdict on a whole lowered sweep.
        let machine = Machine::paper_figure2();
        let plan = lower(4096, 3, OrderingFamily::PermutedBr, 0);
        let qs: Vec<usize> = mph_ccpipe::plan_pipelining(&plan, &machine, 4096.0 / 16.0)
            .iter()
            .map(|c| c.opt.q)
            .collect();
        let base = simulate_synchronized(
            &plan_unpipelined_schedule(&plan),
            &machine,
            StartupModel::SerializedThenParallel,
        );
        let piped = simulate_synchronized(
            &plan_pipelined_schedule(&plan, &qs),
            &machine,
            StartupModel::SerializedThenParallel,
        );
        assert!(piped.makespan < 0.8 * base.makespan, "{} vs {}", piped.makespan, base.makespan);
        // And the simulated makespans match the plan-driven cost model.
        let want = mph_ccpipe::plan_sweep_cost(&plan, &machine, 4096.0 / 16.0);
        assert!(
            (piped.makespan - want.total).abs() < 1e-6 * want.total,
            "sim {} vs model {}",
            piped.makespan,
            want.total
        );
    }

    #[test]
    fn per_phase_times_sum_to_the_plan_sweep_cost() {
        // The per-phase simulated makespans, summed, must equal the cost
        // model's plan_sweep_cost (same qs): one plan, one price.
        let machine = Machine::paper_figure2();
        let plan = lower(256, 3, OrderingFamily::PermutedBr, 0);
        let q_max = 256.0 / 16.0;
        let qs: Vec<usize> =
            mph_ccpipe::plan_pipelining(&plan, &machine, q_max).iter().map(|c| c.opt.q).collect();
        let times = plan_phase_times(&plan, &machine, &qs, StartupModel::SerializedThenParallel);
        assert_eq!(times.len(), plan.phases().len());
        let total: f64 = times.iter().sum();
        let want = mph_ccpipe::plan_sweep_cost(&plan, &machine, q_max).total;
        assert!((total - want).abs() < 1e-6 * want, "sim per-phase {total} vs model {want}");
        // Exchange phases run e = d..1; the serial tail is 2 phases
        // (division + last), each a single whole-block message.
        let serial: f64 = times[times.len() - 2..].iter().sum();
        let blk = 2.0 * 256.0 * (256.0 / 16.0);
        assert!((serial - 2.0 * machine.single_message_cost(blk)).abs() < 1e-9);
    }

    #[test]
    fn tail_schedule_volume_is_q_invariant_and_reduces_at_one() {
        // The chained-tail lowering reframes the same transitions: per-dim
        // volume must not move for any tail degree, and tail_q = 1 must be
        // the plain pipelined schedule, stage for stage.
        for (m, d) in [(32usize, 2usize), (18, 2), (64, 3)] {
            let plan = lower(m, d, OrderingFamily::Br, 0);
            let qs: Vec<usize> = plan.exchange_phases().map(|_| 1).collect();
            assert_eq!(
                plan_pipelined_schedule_with_tail(&plan, &qs, 1),
                plan_pipelined_schedule(&plan, &qs),
                "m={m} d={d}"
            );
            let want: Vec<f64> = plan.volume_by_dim().iter().map(|&v| v as f64).collect();
            for tq in [2usize, 3, 5] {
                let sched = plan_pipelined_schedule_with_tail(&plan, &qs, tq);
                let got = sched.volume_by_dim();
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-9, "m={m} d={d} tq={tq}: {got:?} vs {want:?}");
                }
            }
        }
    }

    #[test]
    fn tail_replay_tracks_the_chained_tail_price() {
        // The simulator's stage-synchronized wavefront vs the cost model's
        // max-plus recurrence: the two discretize the same chained tail
        // differently (barriers and message combining vs dataflow stamps),
        // so they must agree within the established validation band — and
        // both must beat the whole-block tail.
        use mph_ccpipe::{plan_cost_with_tail, plan_tail_pipelining};
        let machine = Machine::all_port(1000.0, 100.0);
        for m in [256usize, 1024] {
            let d = 3usize;
            let plan = lower(m, d, OrderingFamily::Br, 0);
            let qs: Vec<usize> = plan.exchange_phases().map(|_| 1).collect();
            let tq = plan_tail_pipelining(&plan, &machine, (m / 16) as f64);
            assert!(tq > 1, "m={m}: the chained tail must pay at this scale");
            let sim = simulate_synchronized(
                &plan_pipelined_schedule_with_tail(&plan, &qs, tq),
                &machine,
                StartupModel::SerializedThenParallel,
            )
            .makespan;
            let model = plan_cost_with_tail(&plan, &machine, &qs, tq).total;
            let ratio = sim / model;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "m={m} tq={tq}: sim {sim} vs model {model} (ratio {ratio:.3})"
            );
            let whole = simulate_synchronized(
                &plan_pipelined_schedule(&plan, &qs),
                &machine,
                StartupModel::SerializedThenParallel,
            )
            .makespan;
            assert!(sim < whole, "m={m}: chained {sim} vs whole-block {whole}");
        }
    }

    #[test]
    fn uneven_packet_sizes_travel_with_their_packets() {
        // m = 10, d = 1: the phase-entry blocks have 2 columns each, but a
        // division hands node 1's 3-column block around in later sweeps.
        // Lower sweep 1 (whose entry layout mixes sizes) and check the
        // simulated volume still matches the plan exactly.
        let m = 10;
        let d = 1;
        let partition = BlockPartition::new(m, 2 << d);
        let s0 = SweepSchedule::sweep(d, OrderingFamily::Br, 0);
        let p0 = CommPlan::lower(&s0, &partition, &BlockLayout::canonical(d), 2 * m);
        let s1 = SweepSchedule::sweep(d, OrderingFamily::Br, 1);
        let p1 = CommPlan::lower(&s1, &partition, p0.final_layout(), 2 * m);
        for q in [1usize, 2, 3] {
            let sched = plan_pipelined_schedule(&p1, &[q]);
            let want: Vec<f64> = p1.volume_by_dim().iter().map(|&v| v as f64).collect();
            assert_eq!(sched.volume_by_dim(), want, "q={q}");
        }
    }
}
