//! Property-based tests for the network simulator: conformance with the
//! analytic model on arbitrary phases, and the semantic orderings between
//! execution modes (strict ≥ overlapped, sync ≥ async).

use mph_ccpipe::{CcCube, Machine, PhaseCostModel, PortModel};
use mph_core::OrderingFamily;
use mph_simnet::{
    pipelined_phase_schedule, simulate_async, simulate_synchronized, CommSchedule, CommStage,
    NodeSend, StartupModel,
};
use proptest::prelude::*;

fn family_strategy() -> impl Strategy<Value = OrderingFamily> {
    prop_oneof![
        Just(OrderingFamily::Br),
        Just(OrderingFamily::PermutedBr),
        Just(OrderingFamily::Degree4),
        Just(OrderingFamily::MinAlpha),
    ]
}

fn random_schedule() -> impl Strategy<Value = CommSchedule> {
    (1usize..=3).prop_flat_map(|d| {
        let p = 1usize << d;
        let stage = proptest::collection::vec(
            proptest::collection::vec((0usize..d, 0.0f64..500.0), 0..=d),
            p..=p,
        )
        .prop_map(move |sends| {
            CommStage::per_node(
                sends
                    .into_iter()
                    .map(|node| {
                        // At most one message per dimension (combined messages).
                        let mut seen = [false; 8];
                        node.into_iter()
                            .filter_map(|(dim, elems)| {
                                if seen[dim] {
                                    None
                                } else {
                                    seen[dim] = true;
                                    Some(NodeSend { dim, elems })
                                }
                            })
                            .collect()
                    })
                    .collect(),
            )
        });
        proptest::collection::vec(stage, 1..6).prop_map(move |stages| CommSchedule::new(d, stages))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strict_sync_simulation_equals_analytic_model(
        family in family_strategy(),
        e in 2usize..=6,
        q in 1usize..150,
        elems in 1.0f64..1e4,
        ts in 0.0f64..3000.0,
        tw in 0.1f64..300.0,
    ) {
        let machine = Machine::all_port(ts, tw);
        let cc = CcCube::exchange_phase(family, e, elems);
        let model = PhaseCostModel::new(&cc, machine);
        let sched = pipelined_phase_schedule(e, &cc, q);
        let sim = simulate_synchronized(&sched, &machine, StartupModel::SerializedThenParallel);
        let want = model.cost(q);
        prop_assert!(
            (sim.makespan - want).abs() <= 1e-6 * want.max(1.0),
            "{family} e={e} q={q}: sim {} vs model {want}",
            sim.makespan
        );
    }

    #[test]
    fn overlapped_startups_never_slower(sched in random_schedule(), ts in 0.0f64..2000.0, tw in 0.1f64..100.0) {
        for ports in [PortModel::AllPort, PortModel::OnePort, PortModel::KPort(2)] {
            let machine = Machine { ts, tw, ports };
            let strict = simulate_synchronized(&sched, &machine, StartupModel::SerializedThenParallel);
            let relaxed = simulate_synchronized(&sched, &machine, StartupModel::Overlapped);
            prop_assert!(relaxed.makespan <= strict.makespan + 1e-9, "{ports:?}");
        }
    }

    #[test]
    fn async_never_slower_than_sync(sched in random_schedule(), ts in 0.0f64..2000.0, tw in 0.1f64..100.0) {
        let machine = Machine::all_port(ts, tw);
        let sync = simulate_synchronized(&sched, &machine, StartupModel::SerializedThenParallel);
        let asy = simulate_async(&sched, &machine, StartupModel::SerializedThenParallel);
        prop_assert!(asy.makespan <= sync.makespan + 1e-9,
            "async {} > sync {}", asy.makespan, sync.makespan);
    }

    #[test]
    fn busy_time_is_mode_invariant(sched in random_schedule(), ts in 0.0f64..2000.0, tw in 0.1f64..100.0) {
        // Total per-dimension busy time is traffic accounting — identical
        // in every execution mode.
        let machine = Machine::all_port(ts, tw);
        let a = simulate_synchronized(&sched, &machine, StartupModel::SerializedThenParallel);
        let b = simulate_async(&sched, &machine, StartupModel::Overlapped);
        for (x, y) in a.dim_busy.iter().zip(&b.dim_busy) {
            prop_assert!((x - y).abs() <= 1e-9 * x.max(1.0));
        }
        prop_assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn makespan_bounds(sched in random_schedule(), ts in 0.1f64..2000.0, tw in 0.1f64..100.0) {
        // Makespan is at least the busiest single message and at most the
        // full serialization of everything.
        let machine = Machine::all_port(ts, tw);
        let r = simulate_synchronized(&sched, &machine, StartupModel::SerializedThenParallel);
        let mut max_single = 0.0f64;
        let mut total = 0.0f64;
        for st in &sched.stages {
            for node in st.iter() {
                for s in node {
                    max_single = max_single.max(ts + s.elems * tw);
                    total += ts + s.elems * tw;
                }
            }
        }
        if r.messages > 0 {
            prop_assert!(r.makespan >= max_single - 1e-9);
            prop_assert!(r.makespan <= total + 1e-9);
        } else {
            prop_assert_eq!(r.makespan, 0.0);
        }
    }
}
