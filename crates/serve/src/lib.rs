//! # mph-serve — online job service over one shared link fabric
//!
//! The batch layer (`mph-batch`) answers "here are N problems, solve
//! them well together". This crate answers the serving question: jobs
//! *arrive over time* on the fabric's deterministic virtual clock, wait
//! in a bounded admission queue, and join the cooperative driver
//! mid-flight at sweep boundaries — preemption-free shortest-plan-first
//! admission priced by the same `mph_ccpipe` cost model that schedules
//! the batch, with size-staggered de-phasing of same-family jobs.
//!
//! * [`ScenarioGen`] — seeded open-loop traffic: exponential
//!   interarrival gaps over a weighted job-size mix, fully replayable;
//! * [`serve`] — lower once, plan admission ([`mph_batch::service_plan`]),
//!   run `mph_eigen::run_job_service`, measure;
//! * [`ServeReport`] — per-job outcomes (latency = arrival→finish),
//!   [`LatencyStats`] p50/p90/p99, queue-wait distribution, jobs/s and
//!   elems/s on the virtual clock, and a priced backlog time series
//!   (queued at full cost, active at `partial_batch_cost` of their
//!   remaining sweeps);
//! * backpressure — an arrival finding the queue full is shed with the
//!   typed `Rejected::QueueFull`, never silently dropped.
//!
//! The serving layer inherits the batch invariant, proptested in
//! `tests/proptests.rs`: every *served* job is bitwise identical to its
//! solo threaded run — mid-flight admission changes when micro-ops run,
//! never what any job computes — and every admitted job finishes
//! (preemption-free SPF cannot starve an admitted job).

pub mod metrics;
pub mod scenario;
pub mod service;

pub use metrics::{latency_stats, percentile, LatencyStats};
pub use mph_batch::{AdmissionConfig, Policy, Throughput};
pub use mph_eigen::{BoundarySample, JobOutcome, Rejected, ServiceRun};
pub use scenario::{JobClass, Scenario, ScenarioGen};
pub use service::{serve, BacklogPoint, ServeOptions, ServeReport};
