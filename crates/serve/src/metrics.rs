//! SLO metrics: latency percentiles over a service run.

/// Order statistics of a latency sample, virtual-clock units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Sample size.
    pub count: usize,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Worst case.
    pub max: f64,
}

/// Nearest-rank percentile of an ascending-sorted sample:
/// `sorted[ceil(p/100 · n) - 1]`, the standard inclusive definition —
/// `percentile(s, 100)` is the max, `percentile(s, 50)` of `[1,2,3,4]`
/// is `2`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile rank out of range: {p}");
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Summarizes a latency sample; `None` when it is empty (a run where
/// everything was shed has no latency distribution, not a zero one).
pub fn latency_stats(latencies: &[f64]) -> Option<LatencyStats> {
    if latencies.is_empty() {
        return None;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(LatencyStats {
        count: sorted.len(),
        p50: percentile(&sorted, 50.0),
        p90: percentile(&sorted, 90.0),
        p99: percentile(&sorted, 99.0),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        max: *sorted.last().expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_textbook_cases() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 75.0), 3.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 0.0), 1.0, "rank clamps to the first sample");
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn stats_summarize_and_order_their_percentiles() {
        let sample: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = latency_stats(&sample).expect("non-empty");
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, 50.0);
        assert_eq!(stats.p90, 90.0);
        assert_eq!(stats.p99, 99.0);
        assert_eq!(stats.max, 100.0);
        assert_eq!(stats.mean, 50.5);
        assert!(stats.p50 <= stats.p90 && stats.p90 <= stats.p99 && stats.p99 <= stats.max);
    }

    #[test]
    fn empty_samples_have_no_distribution() {
        assert_eq!(latency_stats(&[]), None);
    }
}
