//! SLO metrics: latency percentiles over a service run.
//!
//! The order statistics themselves live in [`mph_trace::quantiles`] —
//! the one nearest-rank implementation the whole workspace shares —
//! and this module keeps the serve-flavored shape ([`LatencyStats`])
//! plus the historical `percentile`/`latency_stats` entry points as
//! thin delegations.

/// Order statistics of a latency sample, virtual-clock units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Sample size.
    pub count: usize,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Worst case.
    pub max: f64,
}

/// Nearest-rank percentile of an ascending-sorted sample:
/// `sorted[ceil(p/100 · n) - 1]`, the standard inclusive definition —
/// `percentile(s, 100)` is the max, `percentile(s, 50)` of `[1,2,3,4]`
/// is `2`. Delegates to [`mph_trace::percentile`].
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    mph_trace::percentile(sorted, p)
}

/// Summarizes a latency sample; `None` when it is empty (a run where
/// everything was shed has no latency distribution, not a zero one).
pub fn latency_stats(latencies: &[f64]) -> Option<LatencyStats> {
    mph_trace::summarize(latencies).map(|s| LatencyStats {
        count: s.count,
        p50: s.p50,
        p90: s.p90,
        p99: s.p99,
        mean: s.mean,
        max: s.max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_textbook_cases() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 75.0), 3.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert_eq!(percentile(&s, 0.0), 1.0, "rank clamps to the first sample");
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn stats_summarize_and_order_their_percentiles() {
        let sample: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let stats = latency_stats(&sample).expect("non-empty");
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, 50.0);
        assert_eq!(stats.p90, 90.0);
        assert_eq!(stats.p99, 99.0);
        assert_eq!(stats.max, 100.0);
        assert_eq!(stats.mean, 50.5);
        assert!(stats.p50 <= stats.p90 && stats.p90 <= stats.p99 && stats.p99 <= stats.max);
    }

    #[test]
    fn empty_samples_have_no_distribution() {
        assert_eq!(latency_stats(&[]), None);
    }

    #[test]
    fn delegation_agrees_with_the_shared_helper() {
        let sample = [3.0, 1.0, 2.0];
        let ours = latency_stats(&sample).expect("non-empty");
        let shared = mph_trace::summarize(&sample).expect("non-empty");
        assert_eq!(
            (ours.count, ours.p50, ours.p90, ours.p99, ours.mean, ours.max),
            (shared.count, shared.p50, shared.p90, shared.p99, shared.mean, shared.max)
        );
    }
}
