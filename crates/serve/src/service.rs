//! The serving front end: lower, plan admission, run, measure.

use crate::metrics::{latency_stats, LatencyStats};
use crate::scenario::Scenario;
use mph_batch::{service_plan, AdmissionConfig, Policy, Throughput};
use mph_ccpipe::{partial_batch_cost, BatchOrder, Machine, PlannedJob};
use mph_core::CommPlan;
use mph_eigen::{
    choose_tail_qs, lower_job, packetization_cap, run_job_service_traced, JobSpec, ServiceRun,
};
use mph_runtime::{FabricModel, SinkHandle};
use mph_trace::MetricsRegistry;

/// Service-level options: the shared fabric, the admission discipline,
/// and the pricing machine behind both.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// The one fabric all served jobs share.
    pub fabric: FabricModel,
    /// Admission discipline ([`Policy::ShortestPlanFirst`] prices queued
    /// jobs and admits the cheapest; the others admit in arrival order)
    /// and the service round's interleaving stride.
    pub policy: Policy,
    /// Machine used to price jobs when the fabric is
    /// [`FabricModel::Free`]; a throttled fabric prices on its own
    /// enforced machine.
    pub pricing: Machine,
    /// Queue bound, interleaving width, and de-phasing stagger.
    pub admission: AdmissionConfig,
    /// Trace sink the service records into (default: the zero-cost nop
    /// sink). When enabled, the fabric stamps link/barrier events and
    /// the admission loop adds admit/reject/stagger decisions (node 0's
    /// lane), all on the shared virtual clock. Strictly observational:
    /// results are bitwise identical to the untraced run.
    pub trace: SinkHandle,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            fabric: FabricModel::Free,
            policy: Policy::Fifo,
            pricing: Machine::paper_figure2(),
            admission: AdmissionConfig::default(),
            trace: SinkHandle::nop(),
        }
    }
}

/// One point of the service's backlog time series, sampled at a sweep
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacklogPoint {
    /// The boundary's virtual time.
    pub time: f64,
    /// Jobs waiting in the admission queue.
    pub queue_depth: usize,
    /// Jobs interleaving mid-flight.
    pub active: usize,
    /// Priced time to drain everything in the system serially from here:
    /// queued jobs at full cost, active jobs at the cost of their
    /// remaining sweeps ([`partial_batch_cost`]).
    pub remaining_cost: f64,
}

/// Everything one serving run produces.
#[derive(Debug)]
pub struct ServeReport {
    /// The driver's raw run: per-job results (bitwise solo), outcomes,
    /// boundary samples, traffic, fabric report.
    pub run: ServiceRun,
    /// Arrival→finish latency distribution over served jobs; `None` if
    /// nothing was served.
    pub latency: Option<LatencyStats>,
    /// Arrival→admission queue-wait distribution over served jobs.
    pub queue_wait: Option<LatencyStats>,
    /// Served jobs/s and moved elements/s on the virtual clock; `None`
    /// on a free fabric.
    pub throughput: Option<Throughput>,
    /// Backlog time series, one point per sweep boundary.
    pub backlog: Vec<BacklogPoint>,
    /// When the service drained (virtual clock).
    pub makespan: f64,
}

impl ServeReport {
    /// Jobs solved to completion.
    pub fn served(&self) -> usize {
        self.run.served()
    }

    /// Jobs shed by backpressure.
    pub fn rejected(&self) -> usize {
        self.run.rejected()
    }

    /// Peak admission-queue depth over the run.
    pub fn peak_queue_depth(&self) -> usize {
        self.backlog.iter().map(|p| p.queue_depth).max().unwrap_or(0)
    }

    /// Projects the report into the workspace's shared metric shape:
    /// counters for served/rejected, gauges for makespan/backlog/
    /// throughput, histograms (raw samples, summarizable on demand) for
    /// latency and queue wait.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add("serve.served", self.served() as u64);
        r.add("serve.rejected", self.rejected() as u64);
        r.set_gauge("serve.makespan", self.makespan);
        r.set_gauge("serve.peak_queue_depth", self.peak_queue_depth() as f64);
        if let Some(t) = &self.throughput {
            r.set_gauge("serve.jobs_per_time", t.jobs_per_time);
            r.set_gauge("serve.elems_per_time", t.elems_per_time);
        }
        for o in &self.run.outcomes {
            if let Some(l) = o.latency() {
                r.observe("serve.latency", l);
            }
            if let Some(w) = o.queue_wait() {
                r.observe("serve.queue_wait", w);
            }
        }
        r
    }
}

/// Serves `scenario` on a `d`-cube of threads sharing one fabric: lowers
/// every job once, prices admission with the same plans the driver
/// executes, runs the online service, and assembles the SLO report.
pub fn serve(d: usize, scenario: &Scenario, opts: &ServeOptions) -> ServeReport {
    assert_eq!(scenario.jobs.len(), scenario.arrivals.len(), "one arrival per job");
    let specs: Vec<JobSpec> = scenario.jobs.iter().map(|j| j.to_spec()).collect();
    let lowered: Vec<(Vec<CommPlan>, Vec<Vec<usize>>)> =
        specs.iter().map(|s| lower_job(s, d)).collect();
    // Price each job at the tail degree its JobNode will execute.
    let planned: Vec<PlannedJob<'_>> = lowered
        .iter()
        .zip(&specs)
        .map(|((plans, qs), spec)| PlannedJob {
            plans,
            qs,
            tail_q: plans.first().map_or(1, |p| {
                choose_tail_qs(p, &spec.opts.tail_pipelining, packetization_cap(spec.a.cols(), d))
            }),
        })
        .collect();
    let machine = opts.fabric.machine().unwrap_or(opts.pricing);
    let plan = service_plan(
        &scenario.jobs,
        &planned,
        scenario.arrivals.clone(),
        &opts.policy,
        &machine,
        &opts.admission,
    );
    let run =
        run_job_service_traced(d, &specs, &lowered, opts.fabric.clone(), &plan, opts.trace.clone());

    let latencies: Vec<f64> = run.outcomes.iter().filter_map(|o| o.latency()).collect();
    let waits: Vec<f64> = run.outcomes.iter().filter_map(|o| o.queue_wait()).collect();
    let order = BatchOrder::Serial((0..specs.len()).collect());
    let backlog: Vec<BacklogPoint> = run
        .boundaries
        .iter()
        .map(|b| {
            // Out of the system (not arrived, done, or shed) prices 0;
            // queued prices its whole chain; active prices what's left.
            let mut progress: Vec<usize> = planned.iter().map(PlannedJob::sweeps).collect();
            for &j in &b.queued {
                progress[j] = 0;
            }
            for &(j, sweeps_done) in &b.active {
                progress[j] = sweeps_done;
            }
            BacklogPoint {
                time: b.time,
                queue_depth: b.queue_depth(),
                active: b.active.len(),
                remaining_cost: partial_batch_cost(&planned, &progress, &machine, &order)
                    .serial_total,
            }
        })
        .collect();
    let makespan = run.fabric.makespan;
    let throughput = Throughput::measure(run.served(), run.meter.total_volume(), makespan);
    ServeReport {
        latency: latency_stats(&latencies),
        queue_wait: latency_stats(&waits),
        throughput,
        backlog,
        makespan,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{JobClass, ScenarioGen};
    use mph_core::OrderingFamily;
    use mph_eigen::JacobiOptions;

    fn small_scenario(seed: u64, n: usize, gap: f64) -> Scenario {
        let mut gen = ScenarioGen::new(
            seed,
            n,
            gap,
            vec![
                JobClass { m: 8, svd: false, family: OrderingFamily::Br, weight: 2.0 },
                JobClass { m: 16, svd: true, family: OrderingFamily::Br, weight: 1.0 },
            ],
        );
        gen.opts = JacobiOptions { force_sweeps: Some(1), ..Default::default() };
        gen.generate()
    }

    #[test]
    fn a_throttled_service_reports_latencies_throughput_and_backlog() {
        let scenario = small_scenario(5, 4, 2.0e6);
        let opts = ServeOptions {
            fabric: FabricModel::Throttled(Machine::all_port(1000.0, 100.0)),
            ..Default::default()
        };
        let report = serve(1, &scenario, &opts);
        assert_eq!(report.served(), 4);
        assert_eq!(report.rejected(), 0);
        let lat = report.latency.expect("jobs were served");
        assert!(lat.p50 > 0.0 && lat.p50 <= lat.p99 && lat.p99 <= lat.max);
        assert_eq!(lat.count, 4);
        let t = report.throughput.expect("throttled fabric ticks a clock");
        assert!(t.jobs_per_time > 0.0 && t.elems_per_time > 0.0);
        // The backlog series drains: the last boundary holds the final
        // admission, and pricing is non-negative everywhere.
        assert!(!report.backlog.is_empty());
        assert!(report.backlog.iter().all(|p| p.remaining_cost >= 0.0));
        assert!(report.backlog.iter().any(|p| p.remaining_cost > 0.0));
        let makespan = report.makespan;
        assert!(report.backlog.iter().all(|p| p.time <= makespan));
        // The metrics projection draws from the same run.
        let m = report.metrics();
        assert_eq!(m.counter("serve.served"), 4);
        assert_eq!(m.counter("serve.rejected"), 0);
        assert_eq!(m.gauge("serve.makespan"), Some(makespan));
        let lat_m = m.summary("serve.latency").expect("latency histogram populated");
        assert_eq!((lat_m.count, lat_m.p50, lat_m.max), (lat.count, lat.p50, lat.max));
    }

    #[test]
    fn tracing_defaults_to_the_nop_sink() {
        let opts = ServeOptions::default();
        assert!(!opts.trace.is_enabled());
        assert_eq!(opts, ServeOptions::default());
    }

    #[test]
    fn queue_waits_vanish_under_light_load_and_grow_under_a_burst() {
        let opts = ServeOptions {
            fabric: FabricModel::Throttled(Machine::all_port(1000.0, 100.0)),
            admission: AdmissionConfig { max_active: 1, ..Default::default() },
            ..Default::default()
        };
        // Light load: huge gaps, every job admits on arrival.
        let light = serve(1, &small_scenario(5, 3, 1.0e9), &opts);
        let light_wait = light.queue_wait.expect("served").max;
        assert_eq!(light_wait, 0.0, "light load never queues");
        // Burst: all at once through a width-1 service — someone waits.
        let burst = serve(1, &small_scenario(5, 3, 0.0), &opts);
        assert!(burst.queue_wait.expect("served").max > 0.0);
        assert!(burst.peak_queue_depth() > 0);
    }

    #[test]
    fn free_fabric_serves_everything_with_no_clock() {
        let report = serve(1, &small_scenario(9, 3, 100.0), &ServeOptions::default());
        assert_eq!(report.served(), 3);
        assert_eq!(report.makespan, 0.0);
        assert!(report.throughput.is_none());
        assert_eq!(report.latency.expect("served").max, 0.0);
    }
}
