//! Seeded open-loop arrival scenarios: the traffic the service is
//! measured under.
//!
//! A [`ScenarioGen`] draws a fixed number of jobs from a weighted class
//! mix and spaces them with exponential interarrival gaps on the
//! fabric's virtual clock — the standard open-loop (Poisson-like) load
//! model, except fully deterministic: the same seed always produces the
//! same matrices and the same arrival instants, so a serving benchmark
//! is replayable bit for bit.

use mph_batch::Job;
use mph_core::OrderingFamily;
use mph_eigen::JacobiOptions;
use mph_linalg::symmetric::random_symmetric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One class in the job-size mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobClass {
    /// Problem size (matrix is `m × m`).
    pub m: usize,
    /// SVD instead of symmetric eigendecomposition.
    pub svd: bool,
    /// The ordering family the job's sweeps walk.
    pub family: OrderingFamily,
    /// Relative draw weight within the mix (need not be normalized).
    pub weight: f64,
}

/// A concrete, replayable workload: jobs plus their arrival instants
/// (finite, non-decreasing, starting at 0).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub jobs: Vec<Job>,
    pub arrivals: Vec<f64>,
}

/// The seeded generator.
#[derive(Debug, Clone)]
pub struct ScenarioGen {
    /// Master seed; every matrix and every gap derives from it.
    pub seed: u64,
    /// Number of jobs to draw.
    pub n_jobs: usize,
    /// Mean of the exponential interarrival gap (virtual-clock units).
    /// Non-positive means all jobs arrive at time 0.
    pub mean_interarrival: f64,
    /// Weighted class mix to draw each job from.
    pub mix: Vec<JobClass>,
    /// Solver options stamped on every job (the serving benchmarks force
    /// a fixed sweep count so the load is size-determined).
    pub opts: JacobiOptions,
}

impl ScenarioGen {
    /// A generator over `mix` with default solver options.
    pub fn new(seed: u64, n_jobs: usize, mean_interarrival: f64, mix: Vec<JobClass>) -> Self {
        ScenarioGen { seed, n_jobs, mean_interarrival, mix, opts: JacobiOptions::default() }
    }

    /// Draws the scenario. Deterministic in `self`.
    pub fn generate(&self) -> Scenario {
        assert!(self.n_jobs > 0, "a scenario needs at least one job");
        assert!(!self.mix.is_empty(), "a scenario needs at least one job class");
        let total_weight: f64 = self.mix.iter().map(|c| c.weight.max(0.0)).sum();
        assert!(total_weight > 0.0, "the class mix needs positive total weight");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        let mut arrivals = Vec::with_capacity(self.n_jobs);
        let mut now = 0.0_f64;
        for j in 0..self.n_jobs {
            // Weighted class pick by cumulative weight.
            let mut pick = rng.gen_range(0.0..total_weight);
            let mut class = self.mix[self.mix.len() - 1];
            for c in &self.mix {
                let w = c.weight.max(0.0);
                if pick < w {
                    class = *c;
                    break;
                }
                pick -= w;
            }
            // Fresh matrix seed per job, decorrelated from the draws above.
            let a =
                random_symmetric(class.m, self.seed.wrapping_mul(0x9e37).wrapping_add(j as u64));
            jobs.push(if class.svd {
                Job::Svd { a, family: class.family, opts: self.opts.clone() }
            } else {
                Job::Eigen { a, family: class.family, opts: self.opts.clone() }
            });
            arrivals.push(now);
            if self.mean_interarrival > 0.0 {
                // Inverse-CDF exponential draw; 1 - u keeps ln() finite.
                let u: f64 = rng.gen_range(0.0_f64..1.0_f64);
                now += -self.mean_interarrival * (1.0 - u).ln();
            }
        }
        Scenario { jobs, arrivals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<JobClass> {
        vec![
            JobClass { m: 8, svd: false, family: OrderingFamily::Br, weight: 2.0 },
            JobClass { m: 16, svd: true, family: OrderingFamily::Degree4, weight: 1.0 },
        ]
    }

    #[test]
    fn scenarios_are_deterministic_in_the_seed() {
        let gen = ScenarioGen::new(7, 6, 100.0, mix());
        let (a, b) = (gen.generate(), gen.generate());
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.jobs.len(), 6);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.cols(), y.cols());
            assert_eq!(x.family(), y.family());
        }
        // A different seed moves the arrival sequence.
        let c = ScenarioGen::new(8, 6, 100.0, mix()).generate();
        assert_ne!(a.arrivals, c.arrivals);
    }

    #[test]
    fn arrivals_start_at_zero_and_never_decrease() {
        let s = ScenarioGen::new(3, 20, 50.0, mix()).generate();
        assert_eq!(s.arrivals[0], 0.0);
        for w in s.arrivals.windows(2) {
            assert!(w[1] >= w[0] && w[1].is_finite(), "non-decreasing finite arrivals: {w:?}");
        }
        // Mean gap lands within a loose factor of the configured mean.
        let mean_gap = s.arrivals.last().unwrap() / (s.arrivals.len() - 1) as f64;
        assert!((10.0..=250.0).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn zero_interarrival_means_a_burst_and_the_mix_is_honored() {
        let s = ScenarioGen::new(11, 12, 0.0, mix()).generate();
        assert!(s.arrivals.iter().all(|&t| t == 0.0));
        assert!(s.jobs.iter().all(|j| j.cols() == 8 || j.cols() == 16));
        // Both classes appear over a dozen draws at 2:1 weights.
        assert!(s.jobs.iter().any(|j| j.cols() == 8));
        assert!(s.jobs.iter().any(|j| j.cols() == 16));
    }
}
