//! The serving layer's load-bearing invariants, property-tested over
//! random scenarios, fabrics, and admission disciplines:
//!
//! 1. **Bitwise solo**: every *served* job's result is bitwise identical
//!    to its solo threaded run — mid-flight admission at sweep
//!    boundaries changes when micro-ops execute, never what any job
//!    computes.
//! 2. **No starvation**: preemption-free SPF admission finishes every
//!    admitted job — each served outcome has a finite, non-negative
//!    latency, and served + rejected partitions the scenario.

use mph_batch::{AdmissionConfig, Job, Policy};
use mph_ccpipe::Machine;
use mph_core::OrderingFamily;
use mph_eigen::{block_jacobi_threaded, svd_block_threaded, JacobiOptions, JobOutcome, JobResult};
use mph_runtime::FabricModel;
use mph_serve::{serve, JobClass, Rejected, ScenarioGen, ServeOptions};
use proptest::prelude::*;

fn forced(sweeps: usize) -> JacobiOptions {
    JacobiOptions { force_sweeps: Some(sweeps), ..Default::default() }
}

fn scenario(seed: u64, n: usize, gap: f64, sweeps: usize) -> mph_serve::Scenario {
    let mut gen = ScenarioGen::new(
        seed,
        n,
        gap,
        vec![
            JobClass { m: 8, svd: false, family: OrderingFamily::Br, weight: 2.0 },
            JobClass { m: 8, svd: true, family: OrderingFamily::Br, weight: 1.0 },
            JobClass { m: 16, svd: false, family: OrderingFamily::Degree4, weight: 1.0 },
        ],
    );
    gen.opts = forced(sweeps);
    gen.generate()
}

fn solo_matches(job: &Job, d: usize, got: &JobResult) -> bool {
    match job {
        Job::Eigen { a, family, opts } => {
            let (solo, _) = block_jacobi_threaded(a, d, *family, opts);
            let r = got.eigen().expect("kind preserved");
            r.rotations == solo.rotations
                && r.sweeps == solo.sweeps
                && r.eigenvalues == solo.eigenvalues
                && (0..r.eigenvalues.len())
                    .all(|c| r.eigenvectors.col(c) == solo.eigenvectors.col(c))
        }
        Job::Svd { a, family, opts } => {
            let (solo, _) = svd_block_threaded(a, d, *family, opts);
            let r = got.svd().expect("kind preserved");
            r.rotations == solo.rotations
                && r.sweeps == solo.sweeps
                && r.singular_values == solo.singular_values
                && (0..r.singular_values.len())
                    .all(|c| r.u.col(c) == solo.u.col(c) && r.v.col(c) == solo.v.col(c))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_served_job_is_bitwise_its_solo_run_and_nobody_starves(
        seed in 0u64..1000,
        d in 1usize..=2,
        n in 2usize..=4,
        sweeps in 1usize..=2,
        burst in any::<bool>(),
        spf in any::<bool>(),
    ) {
        // Interarrival near the solo service time keeps the queue busy
        // without guaranteeing either an empty or a saturated system.
        let gap = if burst { 0.0 } else { 5.0e5 };
        let scenario = scenario(seed, n, gap, sweeps);
        let opts = ServeOptions {
            fabric: FabricModel::Throttled(Machine::all_port(1000.0, 100.0)),
            policy: if spf { Policy::ShortestPlanFirst } else { Policy::Fifo },
            admission: AdmissionConfig { queue_cap: 2, max_active: 2, stagger_slots: 2 },
            ..Default::default()
        };
        let report = serve(d, &scenario, &opts);

        // Served + rejected partitions the scenario.
        prop_assert_eq!(report.served() + report.rejected(), n);
        prop_assert!(report.served() >= 1, "the first arrival always admits");

        for (j, outcome) in report.run.outcomes.iter().enumerate() {
            match outcome {
                JobOutcome::Served { arrival, admitted, finish } => {
                    // No starvation: admitted jobs finish at a finite
                    // time, in causal order.
                    prop_assert!(finish.is_finite() && admitted.is_finite());
                    prop_assert!(arrival <= admitted && admitted <= finish);
                    prop_assert!(outcome.latency().expect("served") >= 0.0);
                    // Bitwise solo equality, mid-flight admission or not.
                    let got = report.run.results[j].as_ref().expect("served jobs have results");
                    prop_assert!(
                        solo_matches(&scenario.jobs[j], d, got),
                        "job {} diverged from its solo run", j
                    );
                }
                JobOutcome::Rejected(Rejected::QueueFull { queue_depth, .. }) => {
                    // Backpressure is typed and honest about the cap.
                    prop_assert_eq!(*queue_depth, opts.admission.queue_cap);
                    prop_assert!(report.run.results[j].is_none());
                    prop_assert_eq!(report.run.meter.job_volume(j), 0);
                }
            }
        }
    }
}
