//! Batch jobs: the work items the scheduler accepts.

use mph_core::OrderingFamily;
use mph_eigen::{JacobiOptions, JobSpec};
use mph_linalg::Matrix;

/// One independent problem submitted to the batch scheduler.
///
/// The per-job [`JacobiOptions`] govern everything the solo drivers
/// honor — tolerance, sweep budget/forcing, diagonal caching, pipelining —
/// except the link fabric, which is batch-level
/// ([`crate::BatchOptions::fabric`]): sharing one fabric is the point.
#[derive(Debug, Clone)]
pub enum Job {
    /// Symmetric eigendecomposition of a square `a`.
    Eigen { a: Matrix, family: OrderingFamily, opts: JacobiOptions },
    /// One-sided Jacobi SVD of a (possibly rectangular) `a`.
    Svd { a: Matrix, family: OrderingFamily, opts: JacobiOptions },
}

impl Job {
    /// An eigen job with default options.
    pub fn eigen(a: Matrix, family: OrderingFamily) -> Self {
        Job::Eigen { a, family, opts: JacobiOptions::default() }
    }

    /// An SVD job with default options.
    pub fn svd(a: Matrix, family: OrderingFamily) -> Self {
        Job::Svd { a, family, opts: JacobiOptions::default() }
    }

    /// The problem's column count (its distributed dimension).
    pub fn cols(&self) -> usize {
        match self {
            Job::Eigen { a, .. } | Job::Svd { a, .. } => a.cols(),
        }
    }

    /// The job's ordering family — with [`Job::cols`], the signature that
    /// determines its link walk (what the admission layer staggers by).
    pub fn family(&self) -> OrderingFamily {
        match self {
            Job::Eigen { family, .. } | Job::Svd { family, .. } => *family,
        }
    }

    /// Lowers to the driver's job description.
    pub fn to_spec(&self) -> JobSpec {
        match self {
            Job::Eigen { a, family, opts } => JobSpec::eigen(a.clone(), *family, opts.clone()),
            Job::Svd { a, family, opts } => JobSpec::svd(a.clone(), *family, opts.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_eigen::JobKind;
    use mph_linalg::symmetric::random_symmetric;

    #[test]
    fn jobs_lower_to_their_spec_kind() {
        let a = random_symmetric(8, 1);
        assert_eq!(Job::eigen(a.clone(), OrderingFamily::Br).to_spec().kind, JobKind::Eigen);
        assert_eq!(Job::svd(a.clone(), OrderingFamily::Br).to_spec().kind, JobKind::Svd);
        assert_eq!(Job::eigen(a, OrderingFamily::Br).cols(), 8);
    }
}
