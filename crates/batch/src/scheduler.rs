//! The batch runner: lower, price, order, execute, report.

use crate::job::Job;
use crate::policy::Policy;
use mph_ccpipe::{batch_cost, BatchCost, BatchOrder, Machine, PlannedJob};
use mph_core::CommPlan;
use mph_eigen::{
    choose_tail_qs, lower_job, packetization_cap, run_job_batch_planned_traced, JobResult, JobSpan,
    JobSpec,
};
use mph_runtime::{FabricConfigError, FabricModel, FabricReport, SinkHandle, TrafficMeter};

/// Batch-level options.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOptions {
    /// The one fabric all jobs share. [`FabricModel::Throttled`] gives the
    /// report a measured virtual makespan (and throughput); the per-job
    /// `JacobiOptions::fabric` fields are ignored.
    pub fabric: FabricModel,
    /// How the jobs share it.
    pub policy: Policy,
    /// Machine used to *price* jobs (shortest-plan-first ordering, the
    /// [`BatchCost`] sheet) when the fabric is [`FabricModel::Free`]; a
    /// throttled fabric prices on its own enforced machine.
    pub pricing: Machine,
    /// Trace sink the batch run records into (default: the zero-cost nop
    /// sink). When enabled, the fabric stamps every job's link/barrier
    /// events — tagged with job ids and packet (k, q) headers — on the
    /// shared virtual clock. Strictly observational: results are bitwise
    /// identical to the untraced run.
    pub trace: SinkHandle,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            fabric: FabricModel::Free,
            policy: Policy::Fifo,
            pricing: Machine::paper_figure2(),
            trace: SinkHandle::nop(),
        }
    }
}

/// A batch configuration the scheduler refuses to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchConfigError {
    /// `Policy::Interleave { stride: 0 }` grants no micro-ops per turn —
    /// it would interleave nothing. The legacy lowering path silently
    /// clamps it to 1 (see [`Policy::order`]); the checked constructor
    /// rejects it instead so the caller's intent stays visible.
    ZeroStride,
    /// The fabric itself cannot be enforced (see
    /// [`mph_runtime::FabricConfigError`]).
    InvalidFabric(FabricConfigError),
    /// The fabric is a [`FabricModel::Degraded`] scenario that schedules
    /// link deaths. The batch driver interleaves many jobs' pre-lowered
    /// micro-op chains over direct links and has no relay layer — only
    /// the adaptive solo driver (`block_jacobi_threaded_adaptive` in
    /// `mph-eigen`) routes around dead links. Jitter, episode, and
    /// heterogeneity scenarios are fine; death schedules are rejected up
    /// front instead of asserting inside the fabric clock mid-run.
    DeadLinksUnsupported,
}

impl std::fmt::Display for BatchConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchConfigError::ZeroStride => {
                write!(f, "Policy::Interleave stride must be >= 1 (0 grants no micro-ops)")
            }
            BatchConfigError::InvalidFabric(e) => write!(f, "invalid fabric: {e}"),
            BatchConfigError::DeadLinksUnsupported => write!(
                f,
                "the batch driver does not reroute around dead links; \
                 use a death-free scenario or the adaptive solo driver"
            ),
        }
    }
}

impl std::error::Error for BatchConfigError {}

impl From<FabricConfigError> for BatchConfigError {
    fn from(e: FabricConfigError) -> Self {
        BatchConfigError::InvalidFabric(e)
    }
}

impl BatchOptions {
    /// Checked constructor: rejects configurations the direct struct
    /// literal would only clamp or that would assert mid-run — zero-stride
    /// interleaving ([`BatchConfigError::ZeroStride`]), unenforceable
    /// fabrics ([`BatchConfigError::InvalidFabric`]), and link-death
    /// scenarios the batch driver cannot route around
    /// ([`BatchConfigError::DeadLinksUnsupported`]).
    pub fn new(
        fabric: FabricModel,
        policy: Policy,
        pricing: Machine,
    ) -> Result<BatchOptions, BatchConfigError> {
        if matches!(policy, Policy::Interleave { stride: 0 }) {
            return Err(BatchConfigError::ZeroStride);
        }
        fabric.validate()?;
        if fabric.scenario().is_some_and(|sc| sc.has_deaths()) {
            return Err(BatchConfigError::DeadLinksUnsupported);
        }
        Ok(BatchOptions { fabric, policy, pricing, trace: SinkHandle::nop() })
    }
}

/// Aggregate throughput on the fabric's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Completed jobs per unit of virtual time.
    pub jobs_per_time: f64,
    /// Data-plane elements moved per unit of virtual time.
    pub elems_per_time: f64,
}

impl Throughput {
    /// Rates `jobs` completions and `elems` moved elements against a
    /// measured virtual `makespan`. `None` when the makespan is zero —
    /// a [`FabricModel::Free`] run ticks no clock, so its rate is
    /// undefined, not infinite. Shared by the batch scheduler and the
    /// online serving layer.
    pub fn measure(jobs: usize, elems: u64, makespan: f64) -> Option<Throughput> {
        (makespan > 0.0).then(|| Throughput {
            jobs_per_time: jobs as f64 / makespan,
            elems_per_time: elems as f64 / makespan,
        })
    }
}

/// Everything a batch run produces.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in submission order — each bitwise identical to
    /// the job's solo threaded run.
    pub results: Vec<JobResult>,
    /// Per-job virtual-clock spans, in submission order.
    pub spans: Vec<JobSpan>,
    /// The executed order (the policy's lowering).
    pub order: BatchOrder,
    /// The whole batch's measured virtual makespan (0 on a free fabric).
    pub makespan: f64,
    /// Shared traffic meter with per-job totals.
    pub meter: TrafficMeter,
    /// Fabric report (per-node final clocks).
    pub fabric: FabricReport,
    /// The cost sheet: per-job solo prices, FIFO-serial total, fill-floor,
    /// round-model prediction for `order`, and the serial-tail share.
    pub cost: BatchCost,
    /// Aggregate throughput; `None` on a free fabric (no clock ticks).
    pub throughput: Option<Throughput>,
}

impl BatchReport {
    /// Mean per-job completion time (virtual clock) — the latency figure
    /// shortest-plan-first minimizes.
    pub fn mean_finish(&self) -> f64 {
        self.spans.iter().map(|s| s.finish).sum::<f64>() / self.spans.len().max(1) as f64
    }

    /// Measured throughput gain of this run over the cost sheet's
    /// FIFO-serial prediction... precisely: `serial_total / makespan`
    /// (`None` on a free fabric).
    pub fn measured_gain(&self) -> Option<f64> {
        (self.makespan > 0.0).then(|| self.cost.serial_total / self.makespan)
    }
}

/// Solves `jobs` on a `d`-cube of threads sharing one fabric. Lowers each
/// job to its [`CommPlan`] chain, prices the batch, lowers the policy to a
/// concrete order, executes everything on one `run_spmd_fabric` instance,
/// and assembles the report.
pub fn solve_batch(d: usize, jobs: &[Job], opts: &BatchOptions) -> BatchReport {
    assert!(!jobs.is_empty(), "an empty batch solves nothing");
    let specs: Vec<JobSpec> = jobs.iter().map(Job::to_spec).collect();
    let lowered: Vec<(Vec<CommPlan>, Vec<Vec<usize>>)> =
        specs.iter().map(|s| lower_job(s, d)).collect();
    // The tail degree the runtime will execute (JobNode computes the same
    // per-plan choice; plans of one job share it for Off/Fixed, and Auto
    // converges per plan — the first plan's choice prices the job).
    let planned: Vec<PlannedJob<'_>> = lowered
        .iter()
        .zip(&specs)
        .map(|((plans, qs), spec)| PlannedJob {
            plans,
            qs,
            tail_q: plans.first().map_or(1, |p| {
                choose_tail_qs(p, &spec.opts.tail_pipelining, packetization_cap(spec.a.cols(), d))
            }),
        })
        .collect();
    let machine = opts.fabric.machine().unwrap_or(opts.pricing);
    let order = opts.policy.order(&planned, &machine);
    let cost = batch_cost(&planned, &machine, &order);
    // The lowering that priced the batch is the one that runs it.
    let run = run_job_batch_planned_traced(
        d,
        &specs,
        &lowered,
        opts.fabric.clone(),
        &order,
        opts.trace.clone(),
    );
    let makespan = run.fabric.makespan;
    let throughput = Throughput::measure(jobs.len(), run.meter.total_volume(), makespan);
    BatchReport {
        results: run.results,
        spans: run.spans,
        order,
        makespan,
        meter: run.meter,
        fabric: run.fabric,
        cost,
        throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_core::OrderingFamily;
    use mph_eigen::JacobiOptions;
    use mph_linalg::symmetric::random_symmetric;

    fn forced(sweeps: usize) -> JacobiOptions {
        JacobiOptions { force_sweeps: Some(sweeps), ..Default::default() }
    }

    fn mixed_jobs(m: usize) -> Vec<Job> {
        vec![
            Job::Eigen { a: random_symmetric(m, 1), family: OrderingFamily::Br, opts: forced(1) },
            Job::Svd {
                a: random_symmetric(m, 2),
                family: OrderingFamily::Degree4,
                opts: forced(1),
            },
            Job::Eigen {
                a: random_symmetric(m, 3),
                family: OrderingFamily::PermutedBr,
                opts: forced(1),
            },
        ]
    }

    #[test]
    fn checked_options_reject_a_zero_interleave_stride() {
        let err = BatchOptions::new(
            FabricModel::Free,
            Policy::Interleave { stride: 0 },
            Machine::paper_figure2(),
        )
        .expect_err("stride 0 grants no micro-ops");
        assert_eq!(err, BatchConfigError::ZeroStride);
        assert!(err.to_string().contains("stride"));
        // Any stride >= 1 (and the non-interleaved policies) pass through.
        let ok = BatchOptions::new(
            FabricModel::Free,
            Policy::Interleave { stride: 1 },
            Machine::paper_figure2(),
        )
        .expect("stride 1 is the minimal legal interleave");
        assert_eq!(ok.policy, Policy::Interleave { stride: 1 });
        assert!(
            BatchOptions::new(FabricModel::Free, Policy::Fifo, Machine::paper_figure2()).is_ok()
        );
    }

    #[test]
    fn invalid_and_death_fabrics_are_typed_construction_errors() {
        use mph_ccpipe::PortModel;
        use mph_runtime::{LinkDeath, Scenario, ScenarioSpec};
        use std::sync::Arc;
        // KPort(0) surfaces as the wrapped fabric error...
        let bad = FabricModel::Throttled(Machine { ts: 1.0, tw: 1.0, ports: PortModel::KPort(0) });
        let err = BatchOptions::new(bad, Policy::Fifo, Machine::paper_figure2())
            .expect_err("KPort(0) cannot be enforced");
        assert_eq!(err, BatchConfigError::InvalidFabric(FabricConfigError::ZeroPorts));
        assert!(err.to_string().contains("KPort(0)"));
        // ...a death schedule is refused (the batch driver has no relay)...
        let deadly = ScenarioSpec {
            epochs: 2,
            deaths: vec![LinkDeath { node: 0, dim: 0, epoch: 0 }],
            ..ScenarioSpec::clean(1, Machine::paper_figure2())
        };
        let sc = Scenario::new(2, deadly).expect("a single death keeps the 2-cube connected");
        let err = BatchOptions::new(
            FabricModel::Degraded(Arc::new(sc)),
            Policy::Fifo,
            Machine::paper_figure2(),
        )
        .expect_err("the batch driver cannot route around dead links");
        assert_eq!(err, BatchConfigError::DeadLinksUnsupported);
        assert!(err.to_string().contains("reroute"));
        // ...but a death-free degraded scenario passes.
        let jittery = ScenarioSpec {
            epochs: 2,
            hetero_spread: 1.0,
            ..ScenarioSpec::clean(1, Machine::paper_figure2())
        };
        let sc = Scenario::new(2, jittery).expect("valid scenario");
        assert!(BatchOptions::new(
            FabricModel::Degraded(Arc::new(sc)),
            Policy::Fifo,
            Machine::paper_figure2(),
        )
        .is_ok());
    }

    #[test]
    fn degraded_death_free_batches_stay_bitwise_solo() {
        use mph_runtime::{Scenario, ScenarioSpec};
        use std::sync::Arc;
        // A heterogeneous (death-free) scenario re-times the batch but
        // changes no bits: every job still equals its solo logical run.
        let jobs = mixed_jobs(16);
        let spec = ScenarioSpec {
            epochs: 3,
            hetero_spread: 2.0,
            rate_jitter: 0.2,
            ..ScenarioSpec::clean(5, Machine::all_port(1000.0, 100.0))
        };
        let fabric =
            FabricModel::Degraded(Arc::new(Scenario::new(2, spec).expect("valid scenario")));
        let opts = BatchOptions::new(fabric, Policy::Fifo, Machine::paper_figure2())
            .expect("death-free scenarios are batchable");
        let report = solve_batch(2, &jobs, &opts);
        assert!(report.makespan > 0.0, "a degraded fabric ticks the clock");
        for (i, job) in jobs.iter().enumerate() {
            match job {
                Job::Eigen { a, family, opts } => {
                    let solo = mph_eigen::block_jacobi(a, 2, *family, opts);
                    let got = report.results[i].eigen().expect("eigen result");
                    assert_eq!(got.rotations, solo.rotations, "job {i}");
                    for c in 0..a.cols() {
                        assert_eq!(got.eigenvalues[c], solo.eigenvalues[c], "job {i} λ_{c}");
                    }
                }
                Job::Svd { a, family, opts } => {
                    let solo = mph_eigen::svd_block(a, 2, *family, opts);
                    let got = report.results[i].svd().expect("svd result");
                    assert_eq!(got.rotations, solo.rotations, "job {i}");
                    for c in 0..a.cols() {
                        assert_eq!(
                            got.singular_values[c], solo.singular_values[c],
                            "job {i} σ_{c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn throughput_measure_guards_the_zero_makespan() {
        assert_eq!(Throughput::measure(3, 600, 0.0), None, "free fabric: no clock, no rate");
        let t = Throughput::measure(3, 600, 2.0).expect("positive makespan rates");
        assert_eq!(t.jobs_per_time, 1.5);
        assert_eq!(t.elems_per_time, 300.0);
    }

    #[test]
    fn free_fabric_reports_no_throughput_but_full_results() {
        let report = solve_batch(2, &mixed_jobs(16), &BatchOptions::default());
        assert_eq!(report.results.len(), 3);
        assert!(report.throughput.is_none());
        assert_eq!(report.makespan, 0.0);
        assert!(report.measured_gain().is_none());
        // Per-job traffic still splits.
        assert!(report.meter.job_volume(0) > 0);
        assert_eq!(
            report.meter.job_volume(0) + report.meter.job_volume(1) + report.meter.job_volume(2),
            report.meter.total_volume()
        );
    }

    #[test]
    fn interleave_beats_fifo_on_the_throttled_all_port_fabric() {
        let jobs = mixed_jobs(32);
        let fabric = FabricModel::Throttled(Machine::all_port(1000.0, 100.0));
        let fifo =
            solve_batch(2, &jobs, &BatchOptions { fabric: fabric.clone(), ..Default::default() });
        let inter = solve_batch(
            2,
            &jobs,
            &BatchOptions {
                fabric: fabric.clone(),
                policy: Policy::Interleave { stride: 1 },
                ..Default::default()
            },
        );
        assert!(
            inter.makespan < fifo.makespan,
            "interleaved {} vs fifo {}",
            inter.makespan,
            fifo.makespan
        );
        assert!(inter.measured_gain().expect("throttled") > 1.0);
        let t_fifo = fifo.throughput.expect("throttled");
        let t_inter = inter.throughput.expect("throttled");
        assert!(t_inter.jobs_per_time > t_fifo.jobs_per_time);
        assert!(t_inter.elems_per_time > t_fifo.elems_per_time);
        // Results are identical across policies — scheduling is invisible
        // to the numerics.
        for (a, b) in fifo.results.iter().zip(&inter.results) {
            match (a, b) {
                (JobResult::Eigen(x), JobResult::Eigen(y)) => {
                    assert_eq!(x.eigenvalues, y.eigenvalues)
                }
                (JobResult::Svd(x), JobResult::Svd(y)) => {
                    assert_eq!(x.singular_values, y.singular_values)
                }
                _ => panic!("result kinds diverged"),
            }
        }
    }

    #[test]
    fn round_model_tracks_the_measured_interleaved_makespan() {
        // The acceptance band in miniature: unpipelined jobs, all-port
        // throttled fabric — measured/predicted must sit in [0.8, 1.25].
        let jobs = mixed_jobs(32);
        let fabric = FabricModel::Throttled(Machine::all_port(1000.0, 100.0));
        let report = solve_batch(
            2,
            &jobs,
            &BatchOptions {
                fabric: fabric.clone(),
                policy: Policy::Interleave { stride: 1 },
                ..Default::default()
            },
        );
        let ratio = report.makespan / report.cost.predicted;
        assert!((0.8..=1.25).contains(&ratio), "measured/predicted = {ratio}");
        // FIFO measured vs its (serial) prediction is even tighter.
        let fifo =
            solve_batch(2, &jobs, &BatchOptions { fabric: fabric.clone(), ..Default::default() });
        let fifo_ratio = fifo.makespan / fifo.cost.predicted;
        assert!((0.95..=1.05).contains(&fifo_ratio), "fifo measured/predicted = {fifo_ratio}");
    }

    #[test]
    fn shortest_plan_first_minimizes_mean_completion() {
        // One big job submitted first, two small ones behind it: SPF must
        // cut the mean finish time without changing the total makespan.
        let jobs = vec![
            Job::Eigen { a: random_symmetric(48, 7), family: OrderingFamily::Br, opts: forced(1) },
            Job::Eigen { a: random_symmetric(16, 8), family: OrderingFamily::Br, opts: forced(1) },
            Job::Svd { a: random_symmetric(16, 9), family: OrderingFamily::Br, opts: forced(1) },
        ];
        let fabric = FabricModel::Throttled(Machine::all_port(1000.0, 100.0));
        let fifo =
            solve_batch(2, &jobs, &BatchOptions { fabric: fabric.clone(), ..Default::default() });
        let spf = solve_batch(
            2,
            &jobs,
            &BatchOptions {
                fabric: fabric.clone(),
                policy: Policy::ShortestPlanFirst,
                ..Default::default()
            },
        );
        assert_eq!(spf.order.jobs()[0], 1, "a small job goes first");
        assert!(
            spf.mean_finish() < fifo.mean_finish(),
            "SPF mean finish {} vs FIFO {}",
            spf.mean_finish(),
            fifo.mean_finish()
        );
        assert!((spf.makespan - fifo.makespan).abs() <= 1e-9 * fifo.makespan);
    }

    #[test]
    fn simnet_replay_cross_validates_the_batch() {
        // Third opinion: the simulator's serial and interleaved replays of
        // the same lowered plans bracket the same story — serial equals
        // the sum of solo simulated makespans, interleaved beats it, and
        // the runtime's measured interleaved makespan lands within 25% of
        // the replay.
        use mph_simnet::{interleaved_replay, job_schedule, serial_replay, simulate_synchronized};
        let jobs = mixed_jobs(32);
        let machine = Machine::all_port(1000.0, 100.0);
        let fabric = FabricModel::Throttled(machine);
        let specs: Vec<JobSpec> = jobs.iter().map(Job::to_spec).collect();
        let scheds: Vec<_> = specs
            .iter()
            .map(|s| {
                let (plans, qs) = lower_job(s, 2);
                job_schedule(&plans, &qs)
            })
            .collect();
        let startup = mph_simnet::StartupModel::SerializedThenParallel;
        let sim_serial =
            simulate_synchronized(&serial_replay(&scheds, &[0, 1, 2]), &machine, startup);
        let sim_inter = simulate_synchronized(&interleaved_replay(&scheds), &machine, startup);
        assert!(sim_inter.makespan < sim_serial.makespan);
        let report = solve_batch(
            2,
            &jobs,
            &BatchOptions {
                fabric: fabric.clone(),
                policy: Policy::Interleave { stride: 1 },
                ..Default::default()
            },
        );
        let ratio = report.makespan / sim_inter.makespan;
        assert!((0.75..=1.35).contains(&ratio), "measured/simulated = {ratio}");
    }
}
