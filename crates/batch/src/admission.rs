//! Admission lowering: from a job list + arrival times to the
//! cooperative driver's [`ServicePlan`].
//!
//! The batch layer already knows how to *price* jobs
//! ([`mph_ccpipe::solo_plan_costs`]) and how to *order* them
//! ([`crate::Policy`]); this module reuses both to configure the online
//! service in `mph_eigen::run_job_service`: the bounded queue, the
//! preemption-free admission priority, and the de-phasing stagger that
//! keeps same-family jobs off the same wire in the same round.

use crate::job::Job;
use crate::policy::Policy;
use mph_ccpipe::{solo_plan_costs, Machine, PlannedJob};
use mph_eigen::ServicePlan;

/// Service-level knobs the scenario does not dictate: how much
/// backpressure headroom the queue has, how many jobs interleave at
/// once, and how hard same-family jobs are de-phased.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Bounded queue depth; an arrival finding it full is shed.
    pub queue_cap: usize,
    /// Mid-flight interleaving width.
    pub max_active: usize,
    /// Micro-op offset per rank between same-key active jobs (0 turns
    /// de-phasing off).
    pub stagger_slots: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { queue_cap: 16, max_active: 4, stagger_slots: 2 }
    }
}

/// De-phasing keys: two jobs share a key iff they share an ordering
/// family and a column count — the signature of an identical link walk,
/// which is exactly what the service staggers apart.
pub fn stagger_keys(jobs: &[Job]) -> Vec<u32> {
    let mut classes: Vec<(mph_core::OrderingFamily, usize)> = Vec::new();
    jobs.iter()
        .map(|job| {
            let class = (job.family(), job.cols());
            match classes.iter().position(|&c| c == class) {
                Some(k) => k as u32,
                None => {
                    classes.push(class);
                    (classes.len() - 1) as u32
                }
            }
        })
        .collect()
}

/// Admission priorities under `policy`: [`Policy::ShortestPlanFirst`]
/// prices each job's whole plan chain on `machine` (smaller cost admits
/// first); FIFO and interleaving admit in arrival order.
pub fn admission_priorities(
    policy: &Policy,
    planned: &[PlannedJob<'_>],
    machine: &Machine,
) -> Vec<f64> {
    match policy {
        Policy::ShortestPlanFirst => solo_plan_costs(planned, machine),
        Policy::Fifo | Policy::Interleave { .. } => (0..planned.len()).map(|j| j as f64).collect(),
    }
}

/// Lowers a job list, its plan chains, and an arrival sequence to the
/// driver's [`ServicePlan`]. The policy contributes the admission
/// priority and the round-robin stride ([`Policy::Interleave`] strides
/// as configured, clamped to ≥ 1 like the batch path; the serial
/// policies stride 1 — the service always interleaves its active set,
/// that is its point).
pub fn service_plan(
    jobs: &[Job],
    planned: &[PlannedJob<'_>],
    arrivals: Vec<f64>,
    policy: &Policy,
    machine: &Machine,
    cfg: &AdmissionConfig,
) -> ServicePlan {
    assert_eq!(jobs.len(), planned.len(), "one plan chain per job");
    assert_eq!(jobs.len(), arrivals.len(), "one arrival per job");
    let stride = match policy {
        Policy::Interleave { stride } => (*stride).max(1),
        Policy::Fifo | Policy::ShortestPlanFirst => 1,
    };
    ServicePlan {
        arrivals,
        queue_cap: cfg.queue_cap.max(1),
        max_active: cfg.max_active.max(1),
        priority: admission_priorities(policy, planned, machine),
        stagger_key: stagger_keys(jobs),
        stagger_slots: cfg.stagger_slots,
        stride,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_core::OrderingFamily;
    use mph_eigen::lower_job;
    use mph_linalg::symmetric::random_symmetric;

    fn lowered_for(jobs: &[Job], d: usize) -> Vec<(Vec<mph_core::CommPlan>, Vec<Vec<usize>>)> {
        jobs.iter().map(|j| lower_job(&j.to_spec(), d)).collect()
    }

    fn planned(lowered: &[(Vec<mph_core::CommPlan>, Vec<Vec<usize>>)]) -> Vec<PlannedJob<'_>> {
        lowered.iter().map(|(plans, qs)| PlannedJob { plans, qs, tail_q: 1 }).collect()
    }

    #[test]
    fn stagger_keys_class_jobs_by_family_and_size() {
        let jobs = vec![
            Job::eigen(random_symmetric(16, 1), OrderingFamily::Br),
            Job::svd(random_symmetric(16, 2), OrderingFamily::Br),
            Job::eigen(random_symmetric(16, 3), OrderingFamily::Degree4),
            Job::eigen(random_symmetric(32, 4), OrderingFamily::Br),
            Job::eigen(random_symmetric(16, 5), OrderingFamily::Br),
        ];
        // Same (family, cols) shares a key regardless of eigen/svd kind;
        // a different family or size gets a fresh class.
        assert_eq!(stagger_keys(&jobs), vec![0, 0, 1, 2, 0]);
    }

    #[test]
    fn spf_priorities_are_priced_and_fifo_priorities_are_arrival_order() {
        let jobs = vec![
            Job::eigen(random_symmetric(48, 1), OrderingFamily::Br),
            Job::eigen(random_symmetric(16, 2), OrderingFamily::Br),
        ];
        let lowered = lowered_for(&jobs, 2);
        let planned = planned(&lowered);
        let machine = Machine::paper_figure2();
        let spf = admission_priorities(&Policy::ShortestPlanFirst, &planned, &machine);
        assert!(spf[1] < spf[0], "the small job prices cheaper: {spf:?}");
        assert_eq!(spf, solo_plan_costs(&planned, &machine));
        let fifo = admission_priorities(&Policy::Fifo, &planned, &machine);
        assert_eq!(fifo, vec![0.0, 1.0]);
    }

    #[test]
    fn service_plan_lowers_policy_config_and_arrivals_together() {
        let jobs = vec![
            Job::eigen(random_symmetric(16, 1), OrderingFamily::Br),
            Job::eigen(random_symmetric(16, 2), OrderingFamily::Br),
            Job::svd(random_symmetric(16, 3), OrderingFamily::Degree4),
        ];
        let lowered = lowered_for(&jobs, 1);
        let planned = planned(&lowered);
        let machine = Machine::paper_figure2();
        let cfg = AdmissionConfig { queue_cap: 2, max_active: 1, stagger_slots: 3 };
        let plan = service_plan(
            &jobs,
            &planned,
            vec![0.0, 1.0, 2.0],
            &Policy::Interleave { stride: 4 },
            &machine,
            &cfg,
        );
        assert_eq!(plan.arrivals, vec![0.0, 1.0, 2.0]);
        assert_eq!(plan.queue_cap, 2);
        assert_eq!(plan.max_active, 1);
        assert_eq!(plan.stagger_slots, 3);
        assert_eq!(plan.stride, 4);
        assert_eq!(plan.stagger_key, vec![0, 0, 1]);
        assert_eq!(plan.priority, vec![0.0, 1.0, 2.0], "interleave admits in arrival order");
        // Degenerate knobs clamp instead of wedging the service.
        let clamped = service_plan(
            &jobs,
            &planned,
            vec![0.0, 0.0, 0.0],
            &Policy::Interleave { stride: 0 },
            &machine,
            &AdmissionConfig { queue_cap: 0, max_active: 0, stagger_slots: 0 },
        );
        assert_eq!(clamped.stride, 1);
        assert_eq!(clamped.queue_cap, 1);
        assert_eq!(clamped.max_active, 1);
    }
}
