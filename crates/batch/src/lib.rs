//! # mph-batch — multi-problem batch scheduling on one link fabric
//!
//! The paper's economics — `Ts + S·Tw` per message under a port model —
//! only pay off while the links are busy. A solo solve leaves them idle in
//! its serial tail (division + last transitions) and pipeline
//! prologues/epilogues; serving heavy traffic means *many* small and
//! medium problems, and their bubbles are each other's bandwidth. This
//! crate is the job-queue layer over the cooperative multi-plan driver
//! (`mph_eigen::run_job_batch`):
//!
//! * [`Job`] — an independent problem: `Job::Eigen { a, family, opts }` or
//!   `Job::Svd { a, family, opts }`;
//! * [`Policy`] — how the batch shares the fabric: [`Policy::Fifo`]
//!   (serial baseline), [`Policy::Interleave`] (round-robin micro-op
//!   interleaving — fills link bubbles, maximizes throughput),
//!   [`Policy::ShortestPlanFirst`] (serial in ascending plan-priced cost —
//!   the classic SJF, minimizes mean completion time);
//! * [`solve_batch`] — lowers every job to its `CommPlan` chain, prices
//!   the batch (`mph_ccpipe::batch_cost`), executes it on ONE shared
//!   `run_spmd_fabric` instance, and reports per-job results, per-job
//!   virtual-clock spans, per-job traffic, aggregate throughput
//!   (jobs/time and elements/time on the fabric clock), and the cost
//!   sheet's measured-vs-predicted context.
//!
//! The load-bearing invariant, proptested in `tests/proptests.rs`: every
//! job's result is **bitwise identical** to its solo
//! `block_jacobi_threaded` / `svd_block` run under every policy, port
//! model, pipelining degree, and cache setting — batching changes when
//! messages move, never what any job computes.

pub mod admission;
pub mod job;
pub mod policy;
pub mod scheduler;

pub use admission::{admission_priorities, service_plan, stagger_keys, AdmissionConfig};
pub use job::Job;
pub use mph_ccpipe::{batch_cost, partial_batch_cost, BatchCost, BatchOrder, PlannedJob};
pub use mph_eigen::{JobResult, JobSpan, JobSpec, ServicePlan};
pub use policy::Policy;
pub use scheduler::{solve_batch, BatchConfigError, BatchOptions, BatchReport, Throughput};
