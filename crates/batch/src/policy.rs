//! Scheduling policies: how a batch shares the fabric.

use mph_ccpipe::{solo_plan_costs, BatchOrder, Machine, PlannedJob};

/// The scheduler's sharing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Jobs run back-to-back in submission order — the serial baseline
    /// every gain is measured against.
    Fifo,
    /// Round-robin micro-op interleaving with the given stride: every
    /// job's packets fill the link idle time the others leave behind.
    /// Maximizes fabric utilization and batch throughput on multi-port
    /// machines (a one-port machine serializes the wires anyway).
    ///
    /// Clamp contract: `stride: 0` grants no micro-ops per turn, which
    /// interleaves nothing — [`Policy::order`] clamps it to 1 so a
    /// hand-built struct literal still lowers to a runnable schedule.
    /// The checked path, [`crate::BatchOptions::new`], rejects it with
    /// [`crate::BatchConfigError::ZeroStride`] instead; prefer it when
    /// the stride comes from configuration rather than code.
    Interleave { stride: usize },
    /// Serial, but in ascending plan-priced cost
    /// ([`solo_plan_costs`]: `plan_cost_with` summed over each job's
    /// sweep chain) — the classical shortest-job-first discipline: the
    /// same total makespan as FIFO, the smallest mean completion time.
    ShortestPlanFirst,
}

impl Policy {
    /// Lowers the policy to the concrete [`BatchOrder`] the cooperative
    /// driver executes, pricing jobs on `machine` where the policy needs
    /// prices.
    pub fn order(&self, planned: &[PlannedJob<'_>], machine: &Machine) -> BatchOrder {
        let n = planned.len();
        match self {
            Policy::Fifo => BatchOrder::Serial((0..n).collect()),
            Policy::Interleave { stride } => {
                BatchOrder::RoundRobin { order: (0..n).collect(), stride: (*stride).max(1) }
            }
            Policy::ShortestPlanFirst => {
                let costs = solo_plan_costs(planned, machine);
                let mut idx: Vec<usize> = (0..n).collect();
                // Ties break by submission order: sort_by is stable.
                idx.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
                BatchOrder::Serial(idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mph_core::{BlockLayout, BlockPartition, CommPlan, OrderingFamily, SweepSchedule};

    fn chain(m: usize, d: usize, sweeps: usize) -> Vec<CommPlan> {
        let partition = BlockPartition::new(m, 2 << d);
        let mut layout = BlockLayout::canonical(d);
        (0..sweeps)
            .map(|s| {
                let schedule = SweepSchedule::sweep(d, OrderingFamily::Br, s);
                let plan = CommPlan::lower(&schedule, &partition, &layout, 2 * m);
                layout = plan.final_layout().clone();
                plan
            })
            .collect()
    }

    fn ones(plans: &[CommPlan]) -> Vec<Vec<usize>> {
        plans.iter().map(|p| p.exchange_phases().map(|_| 1).collect()).collect()
    }

    #[test]
    fn shortest_plan_first_sorts_by_priced_cost() {
        let big = chain(64, 2, 1);
        let small = chain(16, 2, 1);
        let (qb, qs) = (ones(&big), ones(&small));
        let planned = [
            PlannedJob { plans: &big, qs: &qb, tail_q: 1 },
            PlannedJob { plans: &small, qs: &qs, tail_q: 1 },
        ];
        let machine = Machine::paper_figure2();
        let order = Policy::ShortestPlanFirst.order(&planned, &machine);
        assert_eq!(order, BatchOrder::Serial(vec![1, 0]), "small job first");
        let costs = solo_plan_costs(&planned, &machine);
        assert!(costs[1] < costs[0]);
    }

    #[test]
    fn fifo_and_interleave_keep_submission_order() {
        let a = chain(16, 1, 1);
        let qa = ones(&a);
        let planned = [
            PlannedJob { plans: &a, qs: &qa, tail_q: 1 },
            PlannedJob { plans: &a, qs: &qa, tail_q: 1 },
        ];
        let machine = Machine::paper_figure2();
        assert_eq!(Policy::Fifo.order(&planned, &machine), BatchOrder::Serial(vec![0, 1]));
        assert_eq!(
            Policy::Interleave { stride: 0 }.order(&planned, &machine),
            BatchOrder::RoundRobin { order: vec![0, 1], stride: 1 },
            "stride clamps to at least 1"
        );
    }
}
