//! The batch subsystem's load-bearing invariant, property-tested: for
//! random job mixes (sizes, dimensions, eigen/SVD kinds, diagonal cache
//! on/off, pipelining degrees) under every scheduling policy and fabric
//! model, **every job's output is bitwise equal to its solo run**, and on
//! a throttled fabric the batch's virtual makespan never exceeds the sum
//! of the jobs' solo makespans — interleaving can only fill bubbles,
//! never add work.
//!
//! Solo references are the *logical* drivers (`block_jacobi`,
//! `svd_block`), which the threaded drivers are proven bitwise-equal to in
//! `mph-eigen`'s own tests — one equality chain, three links.

use mph_batch::{solve_batch, BatchOptions, Job, Policy};
use mph_ccpipe::{Machine, PortModel};
use mph_core::OrderingFamily;
use mph_eigen::{block_jacobi, svd_block, JacobiOptions, Pipelining};
use mph_linalg::symmetric::random_symmetric;
use mph_runtime::{FabricModel, Scenario, ScenarioSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// A death-free degraded scenario (heterogeneity × jitter × episodes) —
/// the impairment classes the batch driver supports (death schedules are
/// rejected by `BatchOptions::new`; only the adaptive solo driver relays).
fn degraded_fabric(seed: u64) -> FabricModel {
    let spec = ScenarioSpec {
        epochs: 3,
        hetero_spread: 2.0,
        rate_jitter: 0.25,
        delay_jitter: 0.25,
        episode_rate: 0.3,
        episode_recovery: 0.5,
        episode_severity: 4.0,
        ..ScenarioSpec::clean(seed, Machine::all_port(1000.0, 100.0))
    };
    FabricModel::Degraded(Arc::new(
        Scenario::new(2, spec).expect("death-free scenarios always compile"),
    ))
}

fn fabric_strategy() -> impl Strategy<Value = FabricModel> {
    prop_oneof![
        Just(FabricModel::Free),
        Just(FabricModel::Throttled(Machine::all_port(1000.0, 100.0))),
        Just(FabricModel::Throttled(Machine::one_port(1000.0, 100.0))),
        Just(FabricModel::Throttled(Machine { ts: 50.0, tw: 3.0, ports: PortModel::KPort(2) })),
        (0u64..500).prop_map(degraded_fabric),
    ]
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Interleave { stride: 1 }),
        Just(Policy::Interleave { stride: 2 }),
        Just(Policy::ShortestPlanFirst),
    ]
}

/// A deterministic pseudo-random job mix: kinds alternate, families
/// rotate, sizes vary (uneven partitions included), all derived from the
/// case's seed.
fn job_mix(njobs: usize, d: usize, seed: u64, opts: JacobiOptions) -> Vec<Job> {
    let nblocks = 2 << d;
    (0..njobs)
        .map(|i| {
            let s = seed as usize + i;
            let m = nblocks * (1 + (s % 2)) + ((seed as usize + 3 * i) % 3);
            let a = random_symmetric(m, seed + 31 * i as u64);
            let family = OrderingFamily::ALL[s % OrderingFamily::ALL.len()];
            if s.is_multiple_of(2) {
                Job::Eigen { a, family, opts: opts.clone() }
            } else {
                Job::Svd { a, family, opts: opts.clone() }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batched_jobs_are_bitwise_solo_and_never_slower_than_serial(
        d in 1usize..=2,
        njobs in 1usize..=3,
        fabric in fabric_strategy(),
        policy in policy_strategy(),
        seed in 0u64..1000,
        cache in any::<bool>(),
        qsel in 0usize..=2,
        sweeps in 1usize..=2,
    ) {
        let pipelining = [Pipelining::Off, Pipelining::Fixed(2), Pipelining::Fixed(5)][qsel];
        let opts = JacobiOptions {
            force_sweeps: Some(sweeps),
            cache_diagonals: cache,
            pipelining,
            ..Default::default()
        };
        let jobs = job_mix(njobs, d, seed, opts);
        let report = solve_batch(d, &jobs, &BatchOptions { fabric: fabric.clone(), policy, ..Default::default() });

        // 1. Bitwise: every job's batched result == its solo run.
        for (i, job) in jobs.iter().enumerate() {
            match job {
                Job::Eigen { a, family, opts } => {
                    let solo = block_jacobi(a, d, *family, opts);
                    let got = report.results[i].eigen().expect("eigen result");
                    prop_assert_eq!(got.rotations, solo.rotations, "job {} rotations", i);
                    prop_assert_eq!(got.sweeps, solo.sweeps, "job {} sweeps", i);
                    for c in 0..a.cols() {
                        prop_assert_eq!(got.eigenvalues[c], solo.eigenvalues[c],
                            "job {} λ_{}", i, c);
                        prop_assert_eq!(got.eigenvectors.col(c), solo.eigenvectors.col(c),
                            "job {} u_{}", i, c);
                    }
                }
                Job::Svd { a, family, opts } => {
                    let solo = svd_block(a, d, *family, opts);
                    let got = report.results[i].svd().expect("svd result");
                    prop_assert_eq!(got.rotations, solo.rotations, "job {} rotations", i);
                    for c in 0..a.cols() {
                        prop_assert_eq!(got.singular_values[c], solo.singular_values[c],
                            "job {} σ_{}", i, c);
                        prop_assert_eq!(got.u.col(c), solo.u.col(c), "job {} u_{}", i, c);
                        prop_assert_eq!(got.v.col(c), solo.v.col(c), "job {} v_{}", i, c);
                    }
                }
            }
        }

        // 2. Per-job traffic partitions the blended totals exactly.
        let job_sum: u64 = (0..njobs).map(|j| report.meter.job_volume(j)).sum();
        prop_assert_eq!(job_sum, report.meter.total_volume());

        // 3. On the virtual clock, the batch never exceeds the sum of the
        //    solo makespans (each measured on the same fabric).
        if fabric.is_throttled() {
            let solo_sum: f64 = jobs
                .iter()
                .map(|job| {
                    solve_batch(
                        d,
                        std::slice::from_ref(job),
                        &BatchOptions { fabric: fabric.clone(), ..Default::default() },
                    )
                    .makespan
                })
                .sum();
            prop_assert!(
                report.makespan <= solo_sum * (1.0 + 1e-9),
                "batch {} vs Σ solo {}",
                report.makespan,
                solo_sum
            );
            prop_assert!(report.makespan > 0.0);
        }
    }

    #[test]
    fn tail_packetization_is_bitwise_invisible_through_solve_batch(
        d in 1usize..=2,
        seed in 0u64..1000,
        cache in any::<bool>(),
        fabric in fabric_strategy(),
        tsel in 0usize..=4,
    ) {
        // The batch driver's tail machine (TailSend/TailRecv) pairs each
        // division/last packet before shipping it — the reference pairing
        // re-tiled by packet boundary — so every tail degree (including Q
        // larger than any chained run and the cost-driven Auto choice)
        // reproduces the tail-off batch bit for bit on every fabric.
        let tail = [
            Pipelining::Fixed(1),
            Pipelining::Fixed(2),
            Pipelining::Fixed(5),
            Pipelining::Fixed(8),
            Pipelining::Auto(Machine::all_port(1000.0, 100.0)),
        ][tsel];
        let mk = |tail_pipelining| JacobiOptions {
            force_sweeps: Some(1),
            cache_diagonals: cache,
            tail_pipelining,
            ..Default::default()
        };
        let batch_opts = BatchOptions { fabric, ..Default::default() };
        let base = solve_batch(d, &job_mix(2, d, seed, mk(Pipelining::Off)), &batch_opts);
        let run = solve_batch(d, &job_mix(2, d, seed, mk(tail)), &batch_opts);
        for (i, (x, y)) in base.results.iter().zip(&run.results).enumerate() {
            match (x.eigen(), y.eigen()) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.rotations, b.rotations, "{:?} job {}", tail, i);
                    for c in 0..a.eigenvalues.len() {
                        prop_assert_eq!(a.eigenvalues[c], b.eigenvalues[c],
                            "{:?} job {} λ_{}", tail, i, c);
                        prop_assert_eq!(a.eigenvectors.col(c), b.eigenvectors.col(c),
                            "{:?} job {} u_{}", tail, i, c);
                    }
                }
                _ => {
                    let a = x.svd().expect("svd result");
                    let b = y.svd().expect("svd result");
                    prop_assert_eq!(a.rotations, b.rotations, "{:?} job {}", tail, i);
                    for c in 0..a.singular_values.len() {
                        prop_assert_eq!(a.singular_values[c], b.singular_values[c],
                            "{:?} job {} σ_{}", tail, i, c);
                        prop_assert_eq!(a.u.col(c), b.u.col(c), "{:?} job {} u_{}", tail, i, c);
                        prop_assert_eq!(a.v.col(c), b.v.col(c), "{:?} job {} v_{}", tail, i, c);
                    }
                }
            }
        }
    }

    #[test]
    fn worker_counts_are_bitwise_identical_through_solve_batch(
        d in 1usize..=2,
        seed in 0u64..1000,
        cache in any::<bool>(),
        q2 in any::<bool>(),
    ) {
        // Intra-node worker pools split pair work by pair index, so the
        // whole batch — eigen and SVD jobs alike — produces identical bits
        // for every worker count, under caching and pipelining.
        let mk = |workers: usize| JacobiOptions {
            force_sweeps: Some(1),
            cache_diagonals: cache,
            pipelining: if q2 { Pipelining::Fixed(2) } else { Pipelining::Off },
            workers,
            ..Default::default()
        };
        let base = solve_batch(d, &job_mix(2, d, seed, mk(1)), &BatchOptions::default());
        for workers in [2usize, 4, 8] {
            let run = solve_batch(d, &job_mix(2, d, seed, mk(workers)), &BatchOptions::default());
            for (i, (x, y)) in base.results.iter().zip(&run.results).enumerate() {
                match (x.eigen(), y.eigen()) {
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.rotations, b.rotations, "workers={} job {}", workers, i);
                        for c in 0..a.eigenvalues.len() {
                            prop_assert_eq!(a.eigenvalues[c], b.eigenvalues[c],
                                "workers={} job {} λ_{}", workers, i, c);
                            prop_assert_eq!(a.eigenvectors.col(c), b.eigenvectors.col(c),
                                "workers={} job {} u_{}", workers, i, c);
                        }
                    }
                    _ => {
                        let a = x.svd().expect("svd result");
                        let b = y.svd().expect("svd result");
                        prop_assert_eq!(a.rotations, b.rotations, "workers={} job {}", workers, i);
                        for c in 0..a.singular_values.len() {
                            prop_assert_eq!(a.singular_values[c], b.singular_values[c],
                                "workers={} job {} σ_{}", workers, i, c);
                            prop_assert_eq!(a.u.col(c), b.u.col(c),
                                "workers={} job {} u_{}", workers, i, c);
                            prop_assert_eq!(a.v.col(c), b.v.col(c),
                                "workers={} job {} v_{}", workers, i, c);
                        }
                    }
                }
            }
        }
    }
}
