//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! stub provides the two facilities `mph-runtime` uses, implemented on std:
//!
//! * [`channel`] — unbounded MPMC channels (`Mutex<VecDeque>` + `Condvar`;
//!   both ends are `Send + Sync`, unlike `std::sync::mpsc`'s receiver);
//! * [`thread`] — scoped threads delegating to [`std::thread::scope`], with
//!   crossbeam's `scope(|s| ...) -> Result` / `s.spawn(|_| ...)` signatures.

pub mod channel {
    //! Unbounded channels whose two ends are both `Send + Sync`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; never blocks. Errors when every receiver has
        /// been dropped (the message comes back in the error).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive, `None` when nothing is queued.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().queue.pop_front()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's calling convention over
    //! [`std::thread::scope`].

    use std::any::Any;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// The scope passed to the closure of [`scope`]; spawn through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Runs `f` with a scope in which borrowing-from-the-stack threads can be
    /// spawned; all are joined before `scope` returns. The `Result` mirrors
    /// crossbeam's signature (this implementation always returns `Ok`;
    /// panics in unjoined children propagate as panics, as with std scopes).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_fifo_across_threads() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let got = super::thread::scope(|s| {
            let h = s.spawn(move |_| (0..100).map(|_| rx.recv().unwrap()).collect::<Vec<_>>());
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(1).unwrap(); // one receiver still alive
        drop(rx2);
        let err = tx.send(9).expect_err("send must fail with no receivers");
        assert_eq!(err.0, 9); // the message comes back
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
