//! The case runner: deterministic seeds, reject handling, failure reporting.

/// Per-test configuration (subset of real proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; kept identical so coverage is
        // comparable with an eventual switch to the real crate.
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold — redraw, don't count.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected precondition.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The generator handed to strategies: the vendored rand's splitmix64
/// `StdRng`, wrapped so strategies see a proptest-owned type.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds the generator.
    pub fn from_seed(state: u64) -> Self {
        use rand::SeedableRng;
        TestRng { inner: rand::rngs::StdRng::seed_from_u64(state) }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Uniform draw from a range, via rand's sampling arithmetic.
    pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        use rand::Rng;
        self.inner.gen_range(range)
    }
}

/// FNV-1a, used to derive a stable per-test base seed from the test name.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Splitmix64 finalizer: decorrelates per-case seeds. Without this, seeds
/// advancing by the generator's own gamma would make case `j + 1` replay
/// case `j`'s stream shifted by one draw.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `config.cases` random cases of `case`, panicking on the first
/// failure with enough context to reproduce it (test name, case index, seed).
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = (config.cases as u64).saturating_mul(20).max(1000);
    let mut draw: u64 = 0;
    while passed < config.cases {
        let seed = mix(base.wrapping_add(draw.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        draw += 1;
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed} (seed {seed:#x}): {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_completes_on_success() {
        run_cases(&ProptestConfig::with_cases(10), "ok", |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_panics_on_failure() {
        run_cases(&ProptestConfig::with_cases(10), "bad", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn rejects_do_not_count_as_passes() {
        let mut n = 0u32;
        run_cases(&ProptestConfig::with_cases(5), "rej", |rng| {
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                n += 1;
                Ok(())
            }
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn consecutive_cases_do_not_share_a_shifted_stream() {
        // Regression: without seed mixing, draw t of case j equals draw
        // t − 1 of case j + 1, collapsing all cases onto one trajectory.
        let mut pairs = Vec::new();
        run_cases(&ProptestConfig::with_cases(64), "stream", |rng| {
            pairs.push((rng.next_u64(), rng.next_u64()));
            Ok(())
        });
        for w in pairs.windows(2) {
            assert_ne!(w[0].1, w[1].0, "case j's 2nd draw equals case j+1's 1st");
        }
    }

    #[test]
    fn seeds_are_deterministic_per_name() {
        let mut a = Vec::new();
        run_cases(&ProptestConfig::with_cases(3), "same", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        run_cases(&ProptestConfig::with_cases(3), "same", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
