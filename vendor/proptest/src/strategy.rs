//! Strategies: value generators composable with `prop_map` / `prop_flat_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a samplable distribution.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Produces a dependent strategy from each drawn value and samples it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union from non-empty boxed alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }

    /// Boxes a strategy (helper for the `prop_oneof!` expansion).
    pub fn boxed<S>(strategy: S) -> BoxedStrategy<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(strategy)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// Range sampling delegates to the vendored rand (one copy of the
// arithmetic); rand's impls assert the range is non-empty.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
