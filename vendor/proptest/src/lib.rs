//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub implements the subset of proptest's API that the
//! workspace's property tests use: the [`proptest!`] macro, `prop_assert*` /
//! [`prop_assume!`] / [`prop_oneof!`], range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], `any::<T>()`, `prop_map` /
//! `prop_flat_map`, and [`test_runner::ProptestConfig`].
//!
//! Semantics: each `#[test]` runs `config.cases` random cases from a seed
//! derived deterministically from the test's name, so failures are
//! reproducible run-to-run. There is **no shrinking** — a failing case
//! reports its case index, seed and message and panics immediately. That is
//! a quality-of-diagnostics loss relative to real proptest, not a coverage
//! loss.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case fails (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is re-drawn and not counted) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&$strategy, __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}
