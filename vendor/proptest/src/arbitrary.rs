//! `any::<T>()`: canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (uniform over its whole domain).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy yielding any value of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty => |$rng:ident| $draw:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn sample(&self, $rng: &mut TestRng) -> $t {
                $draw
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
}
