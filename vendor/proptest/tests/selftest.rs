//! Self-tests for the proptest stand-in: the macro surface the workspace
//! relies on must actually draw cases, honor config/assume/oneof, and —
//! critically — FAIL on false properties (no vacuous green).

use proptest::prelude::*;

fn small_even() -> impl Strategy<Value = u64> {
    (0u64..1000).prop_map(|n| n * 2)
}

proptest! {
    #[test]
    fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..=2.5) {
        prop_assert!((3..17).contains(&x));
        prop_assert!((-2.5..=2.5).contains(&y));
    }

    #[test]
    fn prop_map_composes(n in small_even()) {
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn vec_sizes_are_honored(v in proptest::collection::vec(0usize..5, 2..=7)) {
        prop_assert!(v.len() >= 2 && v.len() <= 7);
        prop_assert!(v.iter().all(|&x| x < 5));
    }

    #[test]
    fn flat_map_sees_outer_draw(pair in (1usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(0usize..10, n..=n).prop_map(move |v| (n, v))
    })) {
        prop_assert_eq!(pair.0, pair.1.len());
    }

    #[test]
    fn oneof_only_yields_alternatives(v in prop_oneof![Just(1u32), Just(7u32), 100u32..200]) {
        prop_assert!(v == 1 || v == 7 || (100..200).contains(&v));
    }

    #[test]
    fn assume_filters_cases(a in 0usize..6, b in 0usize..6) {
        prop_assume!(a != b);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn tuples_and_any(flag in any::<bool>(), t in (0usize..4, 0.0f64..1.0)) {
        // `flag` has no invariant to check beyond being drawable; the tuple does.
        let _: bool = flag;
        prop_assert!(t.0 < 4 && t.1 < 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn config_inner_attribute_parses(x in 0u64..10) {
        prop_assert!(x < 10);
    }
}

proptest! {
    #[test]
    #[should_panic(expected = "always false")]
    fn false_properties_fail(_x in 0usize..10) {
        prop_assert!(false, "always false");
    }

    #[test]
    #[should_panic]
    fn false_equality_fails(x in 1usize..10) {
        prop_assert_eq!(x, 0);
    }
}

/// The generated tests must actually run many cases, not one.
#[test]
fn runner_draws_the_configured_number_of_cases() {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    proptest::test_runner::run_cases(&ProptestConfig::with_cases(64), "distinct_draws", |rng| {
        seen.insert(rng.next_u64());
        Ok(())
    });
    assert_eq!(seen.len(), 64, "each case must get a distinct seed");
}
