//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! stub provides exactly the (tiny) API surface the workspace uses: a seeded
//! [`rngs::StdRng`], the [`SeedableRng::seed_from_u64`] constructor and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! splitmix64 — statistically fine for test-matrix generation, deterministic
//! per seed, and stable across platforms. It makes no attempt to match the
//! stream of the real `rand::StdRng`; nothing in this workspace depends on
//! the exact stream, only on seed-determinism.

use std::ops::{Range, RangeInclusive};

/// Types that can seed themselves from a `u64` (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self` using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (subset of the real `Rng` trait).
pub trait Rng: RngCore {
    /// Uniform draw from a range: `rng.gen_range(-1.0..=1.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform `f64` in `[0, 1)` from 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // Closed-interval draw; the endpoint bias is immaterial here.
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{RngCore, SeedableRng};

    /// Splitmix64: tiny, fast, full-period over the 64-bit state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}
