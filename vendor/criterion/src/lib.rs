//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub mirrors the criterion API surface the workspace's benches
//! use — `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`] and `Bencher::iter` — and measures
//! with plain wall-clock timing: per sample it runs enough iterations to
//! cover the measurement budget, then reports the mean, min and max
//! time/iteration. No statistics, no plots, no baseline comparison; replace
//! with the real crate when a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered via `Display`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Filled in by `iter`: per-sample mean nanoseconds per iteration.
    recorded: &'a mut Vec<f64>,
}

impl<'a> Bencher<'a> {
    /// Times `routine`, recording `samples` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Estimate iterations per sample from the warm-up rate.
        let per_sample_budget = self.measurement_time.as_secs_f64() / self.samples as f64;
        let warm_rate = (warm_iters.max(1)) as f64 / self.warm_up_time.as_secs_f64().max(1e-9);
        let iters = ((warm_rate * per_sample_budget).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.recorded.push(elapsed / iters as f64);
        }
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut recorded = Vec::new();
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            recorded: &mut recorded,
        };
        f(&mut b);
        self.report(&id, &recorded);
        self
    }

    /// Benchmarks `f` with an explicit input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are printed eagerly; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples_ns: &[f64]) {
        let _ = &self.criterion;
        if samples_ns.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.id);
            return;
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}/{}: time/iter mean {} [min {} .. max {}] ({} samples)",
            self.name,
            id.id,
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            samples_ns.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The top-level bench context handed to each `criterion_group!` target.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
            default_warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            criterion: self,
        }
    }

    /// Benchmarks a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// Declares a group runner calling each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
