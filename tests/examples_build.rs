//! Guards the `examples/` directory against silent rot: building every
//! example is part of the test suite, so an API change that breaks an
//! example fails CI instead of lingering until someone tries to run it.

use std::process::Command;

#[test]
fn all_examples_build() {
    // Use the exact cargo that is running this test; fall back to PATH for
    // direct `rustc`-less invocations.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn expected_examples_are_present() {
    // The build test is vacuous if examples get deleted; pin the roster.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory missing")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    found.sort();
    let want = [
        "batch_solve",
        "comm_cost_model",
        "eigensolve_pipelined",
        "eigensolve_threaded",
        "ordering_explorer",
        "pipelined_exchange_sim",
        "quickstart",
        "serve_loop",
        "svd_demo",
        "trace_capture",
    ];
    assert_eq!(found, want, "examples roster changed; update this test deliberately");
}
