//! The tracing layer's load-bearing invariants, property-tested:
//!
//! 1. **Observation costs nothing** — a traced run is bitwise identical
//!    to the untraced run of the same options, across fabric models,
//!    packetization degrees, worker counts, and adaptation modes. The
//!    sinks only receive copies of values the runtime computed anyway.
//! 2. **Replays are byte-identical** — the same seed and options
//!    produce the same event stream, and the Chrome trace export of
//!    that stream serializes to the same bytes. A trace capture is a
//!    forensic artifact, not a sample.
//! 3. **The books balance** — per dimension, the element volume the
//!    traced send spans carry equals the traffic meter's per-dim
//!    volume, and each (link, epoch) cell's busy virtual time equals
//!    its element volume priced at that cell's effective `Tw` — the
//!    utilization matrix is the meter re-derived from the timeline.

use mph::core::OrderingFamily;
use mph::eigen::{block_jacobi_threaded_adaptive, Adaptation, JacobiOptions, Pipelining};
use mph::linalg::symmetric::random_symmetric;
use mph::runtime::{
    FabricModel, LinkDeath, Machine, RingSink, Scenario, ScenarioSpec, SinkHandle, TraceEvent,
};
use mph::trace::{chrome_trace_json, validate_chrome_trace, UtilizationMatrix};
use proptest::prelude::*;
use std::sync::Arc;

/// A degraded scenario exercising every impairment class the solo
/// adaptive driver supports, death schedules included (epoch 1 kills an
/// edge, so relays and per-epoch pricing both appear in the trace).
fn degraded_fabric(d: usize, seed: u64, with_death: bool) -> FabricModel {
    let spec = ScenarioSpec {
        epochs: 4,
        hetero_spread: 2.0,
        rate_jitter: 0.25,
        delay_jitter: 0.25,
        episode_rate: 0.3,
        episode_recovery: 0.5,
        episode_severity: 3.0,
        deaths: if with_death && d >= 2 {
            vec![LinkDeath { node: 0, dim: 0, epoch: 1 }]
        } else {
            Vec::new()
        },
        ..ScenarioSpec::clean(seed, Machine::all_port(1000.0, 100.0))
    };
    FabricModel::Degraded(Arc::new(Scenario::new(d, spec).expect("valid scenario")))
}

/// The effective per-element wire time the fabric charged a send on
/// `(node, dim)` at `epoch` — the pricing law `on_send_meta` applies.
fn effective_tw(fabric: &FabricModel, node: usize, dim: usize, epoch: usize) -> f64 {
    match fabric {
        FabricModel::Free => 0.0,
        FabricModel::Throttled(m) => m.tw,
        FabricModel::Degraded(sc) => sc.base().tw * sc.factors(node, dim, epoch).1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn traced_runs_are_bitwise_identical_to_untraced(
        d in 1usize..=2,
        seed in 0u64..1000,
        fsel in 0usize..=4,
        qsel in 0usize..=2,
        workers in 0usize..=2,
        adaptive in any::<bool>(),
        sweeps in 1usize..=2,
    ) {
        let fabric = match fsel {
            0 => FabricModel::Free,
            1 => FabricModel::Throttled(Machine::all_port(1000.0, 100.0)),
            2 => FabricModel::Throttled(Machine::one_port(1000.0, 100.0)),
            3 => degraded_fabric(d, seed, false),
            _ => degraded_fabric(d, seed, true),
        };
        let m = (2 << d) * 2;
        let a = random_symmetric(m, seed);
        let family = OrderingFamily::ALL[seed as usize % OrderingFamily::ALL.len()];
        let adaptation = if adaptive && matches!(fabric, FabricModel::Degraded(_)) {
            Adaptation::Reactive
        } else {
            Adaptation::Off
        };
        let base = JacobiOptions {
            force_sweeps: Some(sweeps),
            pipelining: [Pipelining::Off, Pipelining::Fixed(2), Pipelining::Fixed(4)][qsel],
            fabric,
            adaptation,
            workers,
            ..Default::default()
        };
        let (plain, plain_meter, plain_fab, plain_adaptive) =
            block_jacobi_threaded_adaptive(&a, d, family, &base);

        let ring = Arc::new(RingSink::new(d, 1 << 16));
        let traced_opts =
            JacobiOptions { trace: SinkHandle::new(ring.clone()), ..base.clone() };
        let (traced, traced_meter, traced_fab, traced_adaptive) =
            block_jacobi_threaded_adaptive(&a, d, family, &traced_opts);

        // Bitwise-identical numerics, identical timing, identical books.
        prop_assert_eq!(traced.rotations, plain.rotations);
        prop_assert_eq!(traced.sweeps, plain.sweeps);
        for c in 0..m {
            prop_assert_eq!(traced.eigenvalues[c], plain.eigenvalues[c], "λ_{}", c);
            prop_assert_eq!(traced.eigenvectors.col(c), plain.eigenvectors.col(c), "u_{}", c);
        }
        prop_assert_eq!(traced_fab.makespan, plain_fab.makespan);
        prop_assert_eq!(traced_meter.total_volume(), plain_meter.total_volume());
        prop_assert_eq!(traced_adaptive, plain_adaptive);

        // The trace actually recorded something (sweep boundaries exist
        // on every fabric, link spans on throttled/degraded ones).
        prop_assert!(ring.total_recorded() > 0, "an enabled sink must see events");
    }

    #[test]
    fn replayed_traces_export_byte_identical_json(
        d in 1usize..=2,
        seed in 0u64..1000,
        fsel in 0usize..=2,
        q in 1usize..=3,
    ) {
        let m = (2 << d) * 2;
        let a = random_symmetric(m, seed);
        let fabric = match fsel {
            0 => FabricModel::Throttled(Machine::one_port(1000.0, 100.0)),
            1 => degraded_fabric(d, seed, false),
            _ => degraded_fabric(d, seed, true),
        };
        let run = || {
            let ring = Arc::new(RingSink::new(d, 1 << 16));
            let opts = JacobiOptions {
                force_sweeps: Some(2),
                pipelining: Pipelining::Fixed(q),
                fabric: fabric.clone(),
                trace: SinkHandle::new(ring.clone()),
                ..Default::default()
            };
            block_jacobi_threaded_adaptive(&a, d, OrderingFamily::Br, &opts);
            ring.drain()
        };
        let (lanes1, lanes2) = (run(), run());
        prop_assert_eq!(&lanes1, &lanes2, "same seed must replay the same event stream");
        let (json1, json2) = (chrome_trace_json(&lanes1), chrome_trace_json(&lanes2));
        prop_assert_eq!(&json1, &json2, "exports must serialize to identical bytes");
        let events = validate_chrome_trace(&json1);
        prop_assert!(events.is_ok(), "export must be well-formed: {:?}", events);
        prop_assert!(events.unwrap() > 0);
    }

    #[test]
    fn busy_vtime_reconciles_with_the_meter(
        d in 1usize..=2,
        seed in 0u64..1000,
        fsel in 0usize..=2,
        q in 1usize..=3,
    ) {
        let m = (2 << d) * 2;
        let a = random_symmetric(m, seed);
        let fabric = match fsel {
            0 => FabricModel::Throttled(Machine::all_port(1000.0, 100.0)),
            1 => FabricModel::Throttled(Machine::one_port(500.0, 10.0)),
            _ => degraded_fabric(d, seed, true),
        };
        let ring = Arc::new(RingSink::new(d, 1 << 16));
        let opts = JacobiOptions {
            force_sweeps: Some(2),
            pipelining: Pipelining::Fixed(q),
            fabric: fabric.clone(),
            trace: SinkHandle::new(ring.clone()),
            ..Default::default()
        };
        let (_, meter, _, _) = block_jacobi_threaded_adaptive(&a, d, OrderingFamily::Br, &opts);
        let lanes = ring.drain();

        // 1. Volume: the data elements the traced send spans carry are
        //    exactly the meter's per-dim data volume (control likewise).
        let mut data = vec![0u64; d];
        let mut control = vec![0u64; d];
        for lane in &lanes {
            for e in lane {
                if let TraceEvent::Send { dim, elems, control: c, .. } = e {
                    if *c {
                        control[*dim] += elems;
                    } else {
                        data[*dim] += elems;
                    }
                }
            }
        }
        let by_dim = meter.volume_by_dim();
        for dim in 0..d {
            prop_assert_eq!(data[dim], by_dim[dim], "data volume, dim {}", dim);
            prop_assert_eq!(control[dim], meter.control_volume(dim), "control volume, dim {}", dim);
        }

        // 2. Pricing: each (link, epoch) cell's busy virtual time is its
        //    element volume priced at that cell's effective Tw — the
        //    utilization matrix re-derives the fabric's pricing law.
        let util = UtilizationMatrix::from_lanes(&lanes);
        prop_assert!(util.makespan() > 0.0);
        for ((node, dim, epoch), load) in util.cells() {
            let want = load.elems as f64 * effective_tw(&fabric, node, dim, epoch);
            prop_assert!(
                (load.busy - want).abs() <= 1e-9 * want.max(1.0),
                "cell ({}, {}, {}): busy {} vs priced {}",
                node, dim, epoch, load.busy, want
            );
        }
        // And the per-dim totals reconcile with the meter under a
        // uniform machine, where Σ busy = volume · Tw exactly.
        if let FabricModel::Throttled(machine) = &fabric {
            for (dim, busy) in util.busy_by_dim() {
                let want = (by_dim[dim] + control[dim]) as f64 * machine.tw;
                prop_assert!(
                    (busy - want).abs() <= 1e-9 * want.max(1.0),
                    "dim {}: Σ busy {} vs volume·Tw {}",
                    dim, busy, want
                );
            }
        }
    }
}
