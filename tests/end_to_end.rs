//! End-to-end integration: ordering → sweep schedule → communication
//! pricing/simulation → distributed eigensolve, across crate boundaries.

use mph::ccpipe::{
    pipelined_sweep_cost, unpipelined_sweep_cost, CcCube, Machine, PhaseCostModel, Workload,
};
use mph::core::{validate_sweep_coverage, BlockLayout, OrderingFamily, SweepSchedule};
use mph::eigen::{block_jacobi, block_jacobi_threaded, two_sided_cyclic, JacobiOptions};
use mph::linalg::matmul::{eigen_residual, orthogonality_defect};
use mph::linalg::symmetric::random_symmetric;
use mph::simnet::{pipelined_phase_schedule, simulate_synchronized, StartupModel};

#[test]
fn full_pipeline_for_every_family() {
    let d = 2usize;
    let m = 16usize;
    let a = random_symmetric(m, 4242);
    let machine = Machine::paper_figure2();
    for family in OrderingFamily::ALL {
        // 1. The sweep schedule is coverage-correct.
        let sched = SweepSchedule::first_sweep(d, family);
        validate_sweep_coverage(&sched, &BlockLayout::canonical(d))
            .unwrap_or_else(|e| panic!("{family}: {e}"));

        // 2. Its exchange phases price consistently between the analytic
        //    model and the simulator.
        for e in 1..=d {
            let cc = CcCube::exchange_phase(family, e, 64.0);
            let model = PhaseCostModel::new(&cc, machine);
            let sim = simulate_synchronized(
                &pipelined_phase_schedule(e, &cc, 2),
                &machine,
                StartupModel::SerializedThenParallel,
            );
            let want = model.cost(2);
            assert!((sim.makespan - want).abs() < 1e-9 * want, "{family} e={e}");
        }

        // 3. The distributed solver converges and verifies.
        let (r, _) = block_jacobi_threaded(&a, d, family, &JacobiOptions::default());
        assert!(r.converged, "{family}");
        assert!(eigen_residual(&a, &r.eigenvectors, &r.eigenvalues) < 1e-6, "{family}");
        assert!(orthogonality_defect(&r.eigenvectors) < 1e-10, "{family}");
    }
}

#[test]
fn spectra_agree_across_all_solvers() {
    let m = 20usize;
    let a = random_symmetric(m, 99);
    let opts = JacobiOptions { tol: 1e-10, ..Default::default() };
    let oracle = two_sided_cyclic(&a, &opts).sorted_eigenvalues();
    for family in OrderingFamily::ALL {
        for d in [0usize, 1, 2] {
            let logical = block_jacobi(&a, d, family, &opts);
            assert!(logical.converged, "{family} d={d}");
            for (x, y) in logical.sorted_eigenvalues().iter().zip(&oracle) {
                assert!((x - y).abs() < 1e-7, "{family} d={d}: {x} vs {y}");
            }
        }
    }
}

#[test]
fn pipelining_gain_ranking_holds_for_full_sweeps() {
    // The paper's bottom line, as one inequality chain on a transmission-
    // dominated workload: LB ≤ pBR < D4 < pipelined-BR < 1 (deep regime).
    let machine = Machine::paper_figure2();
    let w = Workload::new(2f64.powi(26), 9);
    let base = unpipelined_sweep_cost(&w, &machine);
    let rel = |family| pipelined_sweep_cost(family, &w, &machine).total / base;
    let (br, d4, pbr) =
        (rel(OrderingFamily::Br), rel(OrderingFamily::Degree4), rel(OrderingFamily::PermutedBr));
    assert!(pbr < d4, "pBR {pbr} ≥ D4 {d4}");
    assert!(d4 < br, "D4 {d4} ≥ pipelined BR {br}");
    assert!(br < 0.62, "pipelined BR {br} not ≈ 0.5");
    assert!(br > 0.45, "pipelined BR {br} below the 2× cap");
}

#[test]
fn threaded_traffic_equals_schedule_volume() {
    // The meter's view of one forced sweep must equal the schedule's
    // transition count times the block volume (A + U columns).
    let m = 16usize;
    let d = 2usize;
    let a = random_symmetric(m, 5);
    let opts = JacobiOptions { force_sweeps: Some(1), ..Default::default() };
    let (_, meter) = block_jacobi_threaded(&a, d, OrderingFamily::Br, &opts);
    let p = 1u64 << d;
    let transitions = 2 * p - 1;
    let block_cols = (m as u64) / (2 * p);
    let elems_per_msg = 2 * block_cols * m as u64; // A + U columns
    assert_eq!(meter.total_volume(), transitions * p * elems_per_msg);
}

#[test]
fn sweep_rotation_spreads_traffic_across_sweeps() {
    // With σ_s rotating links every sweep, d sweeps of BR spread volume
    // far more evenly than a single sweep would suggest.
    let m = 32usize;
    let d = 3usize;
    let a = random_symmetric(m, 8);
    let opts = JacobiOptions { force_sweeps: Some(d), ..Default::default() };
    let (_, meter) = block_jacobi_threaded(&a, d, OrderingFamily::Br, &opts);
    let v = meter.volume_by_dim();
    let max = *v.iter().max().unwrap() as f64;
    let min = *v.iter().min().unwrap() as f64;
    // One BR sweep is ~2^{d-1}:1 imbalanced; d rotated sweeps even out.
    assert!(max / min < 2.0, "rotated sweeps still imbalanced: {v:?}");
}
