//! The paper's quantitative claims, as executable assertions. Each test
//! cites the section it checks.

use mph::ccpipe::{figure2_point, Machine};
use mph::core::{
    alpha, alpha_lower_bound, br_sequence, d4_sequence, pbr_sequence, sequence_degree,
    OrderingFamily,
};
use mph::hypercube::validate_e_sequence;

/// §2.3.1: the BR recursion and the e = 4 example sequence.
#[test]
fn claim_br_recursion_example() {
    let d4: Vec<usize> =
        "010201030102010".chars().map(|c| c.to_digit(10).unwrap() as usize).collect();
    assert_eq!(br_sequence(4), d4);
}

/// §2.4: any Q-window of D_e^BR has at least ⌈Q/2⌉ elements equal to 0.
#[test]
fn claim_br_windows_are_half_zeros() {
    for e in 3..=10 {
        let seq = br_sequence(e);
        for q in 2..=e {
            for w in seq.windows(q) {
                let zeros = w.iter().filter(|&&l| l == 0).count();
                assert!(zeros >= q / 2, "e={e} window {w:?}");
            }
        }
    }
}

/// §3.1: α values of the minimum-α sequences and the lower-bound formula.
#[test]
fn claim_min_alpha_values() {
    for (e, want) in [(2usize, 2usize), (3, 3), (4, 4), (5, 7), (6, 11)] {
        assert_eq!(alpha_lower_bound(e), want);
        let seq = mph::core::published_min_alpha_sequence(e).unwrap();
        assert!(validate_e_sequence(&seq, e).is_ok());
        assert_eq!(alpha(&seq, e), want);
    }
}

/// §3.2.1: the worked permuted-BR example for e = 5.
#[test]
fn claim_pbr_worked_example() {
    let want: Vec<usize> = "0102010310121014323132302321232"
        .chars()
        .map(|c| c.to_digit(10).unwrap() as usize)
        .collect();
    assert_eq!(pbr_sequence(5), want);
}

/// §3.2.2 / Theorem 3: α(p-BR)/lower-bound stays in a band around 1.25
/// for large e (Table 1's measured range is 1.16–1.69).
#[test]
fn claim_pbr_ratio_band() {
    for e in 7..=14 {
        let ratio = alpha(&pbr_sequence(e), e) as f64 / alpha_lower_bound(e) as f64;
        assert!((1.0..=1.7).contains(&ratio), "e={e}: ratio {ratio}");
    }
}

/// §3.3 / Definition 3: the degree-4 example sequence for e = 5 and the
/// degree values of both families.
#[test]
fn claim_degree_values() {
    let want: Vec<usize> = "0123012401230121012301240123012"
        .chars()
        .map(|c| c.to_digit(10).unwrap() as usize)
        .collect();
    assert_eq!(d4_sequence(5), want);
    for e in 4..=10 {
        assert_eq!(sequence_degree(&br_sequence(e), e), 2, "BR degree, e={e}");
    }
    for e in 5..=10 {
        assert_eq!(sequence_degree(&d4_sequence(e), e), 4, "D4 degree, e={e}");
    }
}

/// Theorem 1: D_e^D4 is an e-sequence.
#[test]
fn claim_theorem1() {
    for e in 4..=12 {
        assert!(validate_e_sequence(&d4_sequence(e), e).is_ok(), "e={e}");
    }
}

/// §4 + abstract: "the degree-4 ordering … reduces the communication
/// overhead of the algorithm to the half when compared with previous Jacobi
/// orderings" (i.e. versus pipelined BR), and to ~1/4 of the unpipelined
/// algorithm, across all three panels.
#[test]
fn claim_degree4_factor_two_over_pipelined_br() {
    // The factor holds where the exchange phases dominate (d ≥ 8); at
    // small d the d+1 serial division transitions dilute both series.
    let machine = Machine::paper_figure2();
    for mexp in [18i32, 23, 32] {
        for d in [8usize, 10, 12] {
            let p = figure2_point(d, 2f64.powi(mexp), &machine);
            let gain = p.pipelined_br / p.degree4;
            assert!(
                gain > 1.7 && gain < 2.4,
                "m=2^{mexp} d={d}: D4 gain over pipelined BR = {gain}"
            );
            assert!(
                p.degree4 > 0.2 && p.degree4 < 0.36,
                "m=2^{mexp} d={d}: degree-4 = {}",
                p.degree4
            );
        }
    }
}

/// §4: "The performance of the permuted-BR ordering approaches the lower
/// bound when deep pipelining is used" — within Theorem 3's 1.25 factor
/// (plus the serial division phases).
#[test]
fn claim_pbr_near_lower_bound_in_deep_mode() {
    let machine = Machine::paper_figure2();
    let p = figure2_point(12, 2f64.powi(32), &machine);
    assert!(p.permuted_br_deep);
    let ratio = p.permuted_br / p.lower_bound;
    assert!(ratio < 1.4, "pBR/LB = {ratio}");
}

/// Abstract: "The permuted-BR ordering has a performance that tends
/// asymptotically (for large matrices) to 80% of a lower bound" — i.e.
/// LB/cost(pBR) ≈ 0.8.
#[test]
fn claim_eighty_percent_of_lower_bound() {
    let machine = Machine::paper_figure2();
    let p = figure2_point(13, 2f64.powi(32), &machine);
    let efficiency = p.lower_bound / p.permuted_br;
    assert!(efficiency > 0.70 && efficiency < 0.95, "LB/pBR = {efficiency}, expected ≈ 0.8");
}

/// §2.4: pipelining buys at most 2× for BR, regardless of d.
#[test]
fn claim_br_pipelining_cap() {
    let machine = Machine::paper_figure2();
    for d in [5usize, 9, 13] {
        let p = figure2_point(d, 2f64.powi(23), &machine);
        assert!(p.pipelined_br >= 0.45, "d={d}: pipelined BR {} beat the 2× cap", p.pipelined_br);
    }
}

/// Table 2's conclusion: convergence is ordering-insensitive (checked in a
/// small slice here; the full grid is the `table2` experiment binary).
#[test]
fn claim_convergence_insensitive_slice() {
    use mph::eigen::{convergence_stats, JacobiOptions};
    let opts = JacobiOptions::default();
    let stats: Vec<f64> = [OrderingFamily::Br, OrderingFamily::PermutedBr, OrderingFamily::Degree4]
        .iter()
        .map(|&f| convergence_stats(f, 16, 4, 10, &opts, 31337).mean_sweeps)
        .collect();
    let min = stats.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = stats.iter().cloned().fold(0.0f64, f64::max);
    assert!(max - min <= 0.5, "sweep means too different: {stats:?}");
}
